(** Trace replay against the verification daemon (the [bench serve]
    workload and the CI serve smoke).

    Builds a deterministic synthetic request trace — programs × levels ×
    budgets, verify/compile/tv kinds, deliberate duplicates (to exercise
    dedup) and deliberately bad requests (unknown programs, bad levels,
    raw garbage payloads) — replays it over N concurrent client
    connections against an in-process or external daemon, and reports
    throughput, latency percentiles and the daemon's own counters. *)

module Serve = Overify_serve.Serve
module Client = Overify_serve.Client
module Protocol = Overify_serve.Protocol
module Json = Overify_serve.Json

(* ---------------- synthetic trace ---------------- *)

(** A trace entry: a well-formed request, or raw bytes to ship as a
    frame payload (invalid JSON — the daemon must answer with a
    structured error and keep the connection). *)
type entry = Request of Protocol.request | Garbage of string

(** Deterministic ersatz randomness — replays must be reproducible. *)
let lcg seed =
  let state = ref (seed land 0x3fffffff) in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3fffffff;
    !state mod bound

(** [n] entries over the corpus: ~1/2 verify, ~1/4 compile, ~1/8 tv,
    with every 4th entry a duplicate of an earlier one and every 16th
    deliberately malformed. *)
let synthetic_trace ?(seed = 1) ?(programs = [ "wc"; "cat"; "cksum" ])
    ?(levels = [ "O0"; "O2"; "OVERIFY" ]) n : entry list =
  let rand = lcg seed in
  let pick xs = List.nth xs (rand (List.length xs)) in
  let fresh i =
    let kind =
      match rand 8 with
      | 0 -> Protocol.Tv
      | 1 | 2 -> Protocol.Compile
      | _ -> Protocol.Verify
    in
    Request
      {
        Protocol.default_request with
        Protocol.rq_id = i;
        rq_kind = kind;
        rq_program = pick programs;
        rq_level = pick levels;
        rq_input_size = 1 + rand 2;
        rq_timeout = 20.0;
        rq_jobs = (if rand 4 = 0 then 2 else 1);
        rq_deterministic = true;
      }
  in
  let entries = ref [] in
  for i = 0 to n - 1 do
    let e =
      if i mod 16 = 5 then
        (* malformed: bad JSON, unknown program, or unknown level *)
        match rand 3 with
        | 0 -> Garbage "{\"kind\": \"verify\", truncated"
        | 1 ->
            Request
              {
                Protocol.default_request with
                Protocol.rq_id = i;
                rq_program = "no-such-program";
                rq_deterministic = true;
              }
        | _ ->
            Request
              {
                Protocol.default_request with
                Protocol.rq_id = i;
                rq_program = "wc";
                rq_level = "O7";
                rq_deterministic = true;
              }
      else if i mod 4 = 3 && !entries <> [] then
        (* duplicate an earlier well-formed entry (fresh id, same
           fingerprint) — the dedup layer's bread and butter *)
        match
          List.find_opt
            (function Request _ -> true | Garbage _ -> false)
            !entries
        with
        | Some (Request r) -> Request { r with Protocol.rq_id = i }
        | _ -> fresh i
      else fresh i
    in
    entries := e :: !entries
  done;
  List.rev !entries

(* ---------------- replay ---------------- *)

type reply = {
  rp_entry : int;          (** index in the trace *)
  rp_latency_ms : float;
  rp_status : string;      (** envelope status, or ["transport"] *)
  rp_dedup : string;
  rp_json : string;        (** raw envelope (empty on transport failure) *)
}

type summary = {
  s_requests : int;
  s_ok : int;
  s_errors : int;              (** structured error envelopes (expected for
                                   the trace's malformed entries) *)
  s_transport_failures : int;  (** connections that died — 0 in a healthy run *)
  s_wall_s : float;
  s_throughput_rps : float;
  s_p50_ms : float;
  s_p95_ms : float;
  s_p99_ms : float;
  s_max_ms : float;
  s_stats_json : string;       (** the daemon's own counters after the replay *)
  s_replies : reply list;      (** trace order *)
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

(** Replay [trace] over [clients] concurrent connections (entry [i] goes
    to connection [i mod clients]); returns replies in trace order plus
    the daemon's post-replay stats. *)
let replay ~socket ?(clients = 4) (trace : entry list) : summary =
  let entries = Array.of_list trace in
  let n = Array.length entries in
  let replies = Array.make n None in
  let clients = max 1 clients in
  let worker c =
    match Client.connect socket with
    | exception _ ->
        for i = 0 to n - 1 do
          if i mod clients = c then
            replies.(i) <-
              Some
                { rp_entry = i; rp_latency_ms = 0.0; rp_status = "transport";
                  rp_dedup = "none"; rp_json = "" }
        done
    | conn ->
        for i = 0 to n - 1 do
          if i mod clients = c then begin
            let t0 = Unix.gettimeofday () in
            let answer =
              match entries.(i) with
              | Request rq -> Client.rpc conn rq
              | Garbage bytes ->
                  if Client.send_payload conn bytes then
                    Client.read_response conn
                  else Error Protocol.Closed
            in
            let latency = (Unix.gettimeofday () -. t0) *. 1000.0 in
            let reply =
              match answer with
              | Ok json ->
                  let get k =
                    match Protocol.extract_field json k with
                    | Some v -> (
                        match Json.parse v with
                        | Ok (Json.Str s) -> s
                        | _ -> String.trim v)
                    | None -> ""
                  in
                  { rp_entry = i; rp_latency_ms = latency;
                    rp_status = get "status"; rp_dedup = get "dedup";
                    rp_json = json }
              | Error _ ->
                  { rp_entry = i; rp_latency_ms = latency;
                    rp_status = "transport"; rp_dedup = "none"; rp_json = "" }
            in
            replies.(i) <- Some reply
          end
        done;
        Client.close conn
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun c -> Thread.create worker c)
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let stats_json =
    match Client.connect socket with
    | exception _ -> "{}"
    | conn ->
        let r =
          match
            Client.rpc conn
              { Protocol.default_request with Protocol.rq_kind = Protocol.Stats }
          with
          | Ok json -> (
              match Protocol.extract_field json "result" with
              | Some v -> v
              | None -> "{}")
          | Error _ -> "{}"
        in
        Client.close conn;
        r
  in
  let replies =
    Array.to_list replies
    |> List.map (function
         | Some r -> r
         | None ->
             { rp_entry = -1; rp_latency_ms = 0.0; rp_status = "transport";
               rp_dedup = "none"; rp_json = "" })
  in
  let count p = List.length (List.filter p replies) in
  let lat =
    replies
    |> List.filter (fun r -> r.rp_status <> "transport")
    |> List.map (fun r -> r.rp_latency_ms)
    |> Array.of_list
  in
  Array.sort compare lat;
  {
    s_requests = n;
    s_ok = count (fun r -> r.rp_status = "ok");
    s_errors = count (fun r -> r.rp_status = "error");
    s_transport_failures = count (fun r -> r.rp_status = "transport");
    s_wall_s = wall;
    s_throughput_rps = (if wall > 0.0 then float_of_int n /. wall else 0.0);
    s_p50_ms = percentile lat 0.50;
    s_p95_ms = percentile lat 0.95;
    s_p99_ms = percentile lat 0.99;
    s_max_ms = (if Array.length lat = 0 then 0.0 else lat.(Array.length lat - 1));
    s_stats_json = stats_json;
    s_replies = replies;
  }

(** Pull an integer counter out of the daemon-stats document. *)
let stat summary name =
  match Json.parse summary.s_stats_json with
  | Ok j -> (
      match Option.bind (Json.mem j name) Json.int_ with
      | Some v -> v
      | None -> 0)
  | Error _ -> 0

let summary_to_json ?(label = "serve") s =
  Printf.sprintf
    "{\"label\": \"%s\", \"requests\": %d, \"ok\": %d, \"errors\": %d, \
     \"transport_failures\": %d, \"wall_s\": %.3f, \"throughput_rps\": \
     %.1f, \"latency_ms\": {\"p50\": %.2f, \"p95\": %.2f, \"p99\": %.2f, \
     \"max\": %.2f}, \"daemon\": %s}"
    (Json.escape label) s.s_requests s.s_ok s.s_errors s.s_transport_failures
    s.s_wall_s s.s_throughput_rps s.s_p50_ms s.s_p95_ms s.s_p99_ms s.s_max_ms
    (if s.s_stats_json = "" then "{}" else s.s_stats_json)

(** Start an in-process daemon, replay a synthetic trace, stop it.
    Returns the summary and whether the run was healthy: zero transport
    failures, every entry answered, daemon counters consistent, and —
    the point of the batching layer — at least one dedup hit. *)
let run ?(n = 48) ?(clients = 4) ?seed () : summary * bool =
  let daemon = Serve.start () in
  let finally () = Serve.stop daemon in
  Fun.protect ~finally (fun () ->
      let trace = synthetic_trace ?seed n in
      let s = replay ~socket:(Serve.socket_path daemon) ~clients trace in
      let healthy =
        s.s_transport_failures = 0
        && s.s_ok + s.s_errors = s.s_requests
        && s.s_errors > 0 (* the malformed entries must be *answered* *)
        && stat s "dedup_hits" > 0
        && stat s "executed" <= stat s "requests"
      in
      (s, healthy))

(* ---------------- overload chaos ---------------- *)

(** Outcome of the overload schedule ({!run_overload}): a deterministic
    flood against a capacity-1 daemon wedged by an injected [stall@1]
    stuck solver, followed by an accepted stream, a slowloris probe and
    an idle connection. *)
type overload = {
  o_requests : int;            (** framed requests offered (flood + stream
                                   + occupier + filler) *)
  o_ok : int;
  o_overloaded : int;          (** client-observed sheds *)
  o_deadline : int;            (** client-observed [deadline_exceeded] *)
  o_other_errors : int;
  o_transport_failures : int;  (** must be 0: shed ≠ dropped *)
  o_hint_ms_min : int;         (** smallest [retry_after_ms] on a shed *)
  o_accepted_lat : float array;  (** sorted latencies (ms) of [ok] answers *)
  o_watchdog_reason : bool;    (** the wedged job's answer names the watchdog *)
  o_slowloris_answered : bool; (** mid-frame staller got [bad_frame:timeout] *)
  o_idle_reaped : bool;        (** quiet connection closed with no bytes *)
  o_stats_json : string;       (** daemon counters after the schedule *)
}

let envelope_error json =
  match Protocol.extract_field json "error" with
  | Some err when String.length err > 0 && err.[0] = '{' -> (
      match Protocol.extract_field err "kind" with
      | Some k -> (
          match Json.parse k with Ok (Json.Str s) -> Some s | _ -> None)
      | None -> None)
  | _ -> None

let envelope_error_message json =
  match Protocol.extract_field json "error" with
  | Some err when String.length err > 0 && err.[0] = '{' -> (
      match Protocol.extract_field err "message" with
      | Some m -> (
          match Json.parse m with Ok (Json.Str s) -> Some s | _ -> None)
      | None -> None)
  | _ -> None

let retry_hint json =
  match Protocol.extract_field json "error" with
  | Some err when String.length err > 0 && err.[0] = '{' ->
      Option.bind
        (Protocol.extract_field err "retry_after_ms")
        (fun v -> int_of_string_opt (String.trim v))
  | _ -> None

(** One request over a fresh connection; [Error] is a transport failure. *)
let rpc_once ~socket rq =
  match Client.connect socket with
  | exception _ -> Error ()
  | conn ->
      let r = Client.rpc conn rq in
      Client.close conn;
      (match r with Ok json -> Ok json | Error _ -> Error ())

let fetch_stats ~socket =
  match
    rpc_once ~socket
      { Protocol.default_request with Protocol.rq_kind = Protocol.Stats }
  with
  | Ok json ->
      Option.value ~default:"{}" (Protocol.extract_field json "result")
  | Error () -> "{}"

let statj json name =
  match Json.parse json with
  | Ok j -> Option.value ~default:0 (Option.bind (Json.mem j name) Json.int_)
  | Error _ -> 0

(** Poll the daemon's stats until [p] holds (or ~5 s passed). *)
let wait_for ~socket p =
  let rec go tries =
    if tries = 0 then false
    else if p (fetch_stats ~socket) then true
    else begin
      Thread.delay 0.01;
      go (tries - 1)
    end
  in
  go 500

let verify_rq ~id ~timeout ?(faults = "") () =
  {
    Protocol.default_request with
    Protocol.rq_id = id;
    rq_kind = Protocol.Verify;
    rq_program = "wc";
    rq_level = "O0";
    rq_input_size = 1;
    rq_timeout = timeout;
    rq_deterministic = true;
    rq_faults = faults;
  }

(** Distinct-fingerprint cheap probes: the fingerprint hashes
    [rq_timeout], so an epsilon per probe defeats dedup without changing
    behaviour. *)
let compile_rq ~id ~epsilon =
  {
    Protocol.default_request with
    Protocol.rq_id = id;
    rq_kind = Protocol.Compile;
    rq_program = "wc";
    rq_level = "O0";
    rq_timeout = 29.0 -. (0.001 *. float_of_int epsilon);
    rq_deterministic = true;
  }

(** The overload schedule, deterministic by construction:

    1. wedge the single executor with a [stall@1] verify (the injected
       stuck solver polls its cancellation token, so only the watchdog
       frees it — deadline [occupier_timeout] + [grace] later);
    2. fill the capacity-1 queue with one long-deadline verify;
    3. flood [probes] distinct-fingerprint requests — with the executor
       wedged and the queue full, {e every} one must shed with
       [overloaded] + [retry_after_ms], exactly [probes] sheds;
    4. the watchdog fires: the occupier is answered [deadline_exceeded]
       (watchdog reason), the filler then runs normally;
    5. an accepted stream of [accepted] requests measures served
       latency after recovery;
    6. a slowloris connection (magic bytes, then silence) must be
       answered [bad_frame:timeout]; an idle connection must be reaped
       with no answer.

    Healthy iff: zero transport failures, every request answered or
    shed, sheds reconcile exactly with the daemon's [requests_shed],
    the watchdog fired exactly once and the daemon kept serving. *)
let run_overload ?(probes = 8) ?(accepted = 12) ?(occupier_timeout = 2.0)
    ?(grace = 0.5) ?flight_dir () : overload * bool =
  let daemon = Serve.start ~queue_cap:1 ~grace ?flight_dir () in
  let socket = Serve.socket_path daemon in
  let finally () = Serve.stop daemon in
  Fun.protect ~finally (fun () ->
      let ok = ref 0
      and overloaded = ref 0
      and deadline = ref 0
      and other = ref 0
      and transport = ref 0
      and hint_min = ref max_int
      and lats = ref [] in
      let classify ?(lat = 0.0) = function
        | Error () -> incr transport
        | Ok json -> (
            match envelope_error json with
            | None ->
                incr ok;
                lats := lat :: !lats
            | Some "overloaded" ->
                incr overloaded;
                (match retry_hint json with
                | Some h -> hint_min := min !hint_min h
                | None -> hint_min := min !hint_min 0)
            | Some "deadline_exceeded" -> incr deadline
            | Some _ -> incr other)
      in
      (* 1. wedge the executor *)
      let occupier = ref (Error ()) in
      let occ_thread =
        Thread.create
          (fun () ->
            occupier :=
              rpc_once ~socket
                (verify_rq ~id:1 ~timeout:occupier_timeout ~faults:"stall@1" ()))
          ()
      in
      let running =
        wait_for ~socket (fun s ->
            statj s "inflight" >= 1 && statj s "queue_depth" = 0
            && statj s "executed" = 0)
      in
      (* 2. fill the queue *)
      let filler = ref (Error ()) in
      let fill_thread =
        Thread.create
          (fun () ->
            filler := rpc_once ~socket (verify_rq ~id:2 ~timeout:30.0 ()))
          ()
      in
      let queued = wait_for ~socket (fun s -> statj s "queue_depth" >= 1) in
      (* 3. flood: every probe must shed *)
      for i = 0 to probes - 1 do
        classify (rpc_once ~socket (compile_rq ~id:(10 + i) ~epsilon:i))
      done;
      let sheds_exact = !overloaded = probes in
      (* 4. watchdog recovery *)
      Thread.join occ_thread;
      Thread.join fill_thread;
      classify !occupier;
      classify !filler;
      let watchdog_reason =
        match !occupier with
        | Ok json -> (
            match envelope_error_message json with
            | Some m ->
                String.length m >= 8 && String.sub m 0 8 = "watchdog"
            | None -> false)
        | Error () -> false
      in
      (* 5. accepted stream: the daemon must still serve *)
      for i = 0 to accepted - 1 do
        let t0 = Unix.gettimeofday () in
        let r = rpc_once ~socket (compile_rq ~id:(100 + i) ~epsilon:(100 + i)) in
        classify ~lat:((Unix.gettimeofday () -. t0) *. 1000.0) r
      done;
      let stats = fetch_stats ~socket in
      (* 6. slowloris + idle, against a short-fuse daemon *)
      let d2 = Serve.start ~idle_timeout:0.25 ~frame_timeout:0.25 () in
      let s2 = Serve.socket_path d2 in
      let slowloris_answered =
        match Client.connect s2 with
        | exception _ -> false
        | conn ->
            let r =
              if Client.send_bytes conn Protocol.magic then
                match Client.read_response conn with
                | Ok json -> (
                    match envelope_error_message json with
                    | Some "timeout" -> true
                    | _ -> false)
                | Error _ -> false
              else false
            in
            Client.close conn;
            r
      in
      let idle_reaped =
        match Client.connect s2 with
        | exception _ -> false
        | conn ->
            (* no bytes sent: the reaper must close silently — EOF, not
               an answer *)
            let r =
              match Client.read_response conn with
              | Error Protocol.Closed -> true
              | _ -> false
            in
            Client.close conn;
            r
      in
      let stats2 = fetch_stats ~socket:s2 in
      Serve.stop d2;
      let requests = probes + accepted + 2 in
      let lat = Array.of_list !lats in
      Array.sort compare lat;
      let o =
        {
          o_requests = requests;
          o_ok = !ok;
          o_overloaded = !overloaded;
          o_deadline = !deadline;
          o_other_errors = !other;
          o_transport_failures = !transport;
          o_hint_ms_min = (if !hint_min = max_int then 0 else !hint_min);
          o_accepted_lat = lat;
          o_watchdog_reason = watchdog_reason;
          o_slowloris_answered = slowloris_answered;
          o_idle_reaped = idle_reaped;
          o_stats_json = stats;
        }
      in
      let healthy =
        running && queued && sheds_exact
        && o.o_transport_failures = 0
        && o.o_ok + o.o_overloaded + o.o_deadline + o.o_other_errors
           = o.o_requests
        && o.o_ok = accepted + 1 (* the filler ran after recovery *)
        && o.o_deadline = 1 (* the wedged occupier *)
        && o.o_overloaded = statj stats "requests_shed"
        && o.o_hint_ms_min >= 25
        && statj stats "watchdog_fired" = 1
        && statj stats "cancelled" >= 1
        && statj stats "deadline_exceeded" >= 1
        && watchdog_reason && slowloris_answered && idle_reaped
        && statj stats2 "idle_reaped" >= 1
      in
      (o, healthy))

let overload_to_json ?(label = "overload") (o : overload) =
  let pct q =
    let n = Array.length o.o_accepted_lat in
    if n = 0 then 0.0
    else
      o.o_accepted_lat.(min (n - 1)
                          (int_of_float (ceil (q *. float_of_int n)) - 1))
  in
  Printf.sprintf
    "{\"label\": \"%s\", \"requests\": %d, \"ok\": %d, \"overloaded\": %d, \
     \"deadline_exceeded\": %d, \"other_errors\": %d, \
     \"transport_failures\": %d, \"shed_rate\": %.3f, \"retry_hint_ms_min\": \
     %d, \"accepted_latency_ms\": {\"p50\": %.2f, \"p95\": %.2f, \"p99\": \
     %.2f}, \"watchdog_reason\": %b, \"slowloris_answered\": %b, \
     \"idle_reaped\": %b, \"daemon\": %s}"
    (Json.escape label) o.o_requests o.o_ok o.o_overloaded o.o_deadline
    o.o_other_errors o.o_transport_failures
    (float_of_int o.o_overloaded /. float_of_int (max 1 o.o_requests))
    o.o_hint_ms_min (pct 0.50) (pct 0.95) (pct 0.99) o.o_watchdog_reason
    o.o_slowloris_answered o.o_idle_reaped
    (if o.o_stats_json = "" then "{}" else o.o_stats_json)
