(** Trace replay against the verification daemon (the [bench serve]
    workload and the CI serve smoke).

    Builds a deterministic synthetic request trace — programs × levels ×
    budgets, verify/compile/tv kinds, deliberate duplicates (to exercise
    dedup) and deliberately bad requests (unknown programs, bad levels,
    raw garbage payloads) — replays it over N concurrent client
    connections against an in-process or external daemon, and reports
    throughput, latency percentiles and the daemon's own counters. *)

module Serve = Overify_serve.Serve
module Client = Overify_serve.Client
module Protocol = Overify_serve.Protocol
module Json = Overify_serve.Json

(* ---------------- synthetic trace ---------------- *)

(** A trace entry: a well-formed request, or raw bytes to ship as a
    frame payload (invalid JSON — the daemon must answer with a
    structured error and keep the connection). *)
type entry = Request of Protocol.request | Garbage of string

(** Deterministic ersatz randomness — replays must be reproducible. *)
let lcg seed =
  let state = ref (seed land 0x3fffffff) in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3fffffff;
    !state mod bound

(** [n] entries over the corpus: ~1/2 verify, ~1/4 compile, ~1/8 tv,
    with every 4th entry a duplicate of an earlier one and every 16th
    deliberately malformed. *)
let synthetic_trace ?(seed = 1) ?(programs = [ "wc"; "cat"; "cksum" ])
    ?(levels = [ "O0"; "O2"; "OVERIFY" ]) n : entry list =
  let rand = lcg seed in
  let pick xs = List.nth xs (rand (List.length xs)) in
  let fresh i =
    let kind =
      match rand 8 with
      | 0 -> Protocol.Tv
      | 1 | 2 -> Protocol.Compile
      | _ -> Protocol.Verify
    in
    Request
      {
        Protocol.default_request with
        Protocol.rq_id = i;
        rq_kind = kind;
        rq_program = pick programs;
        rq_level = pick levels;
        rq_input_size = 1 + rand 2;
        rq_timeout = 20.0;
        rq_jobs = (if rand 4 = 0 then 2 else 1);
        rq_deterministic = true;
      }
  in
  let entries = ref [] in
  for i = 0 to n - 1 do
    let e =
      if i mod 16 = 5 then
        (* malformed: bad JSON, unknown program, or unknown level *)
        match rand 3 with
        | 0 -> Garbage "{\"kind\": \"verify\", truncated"
        | 1 ->
            Request
              {
                Protocol.default_request with
                Protocol.rq_id = i;
                rq_program = "no-such-program";
                rq_deterministic = true;
              }
        | _ ->
            Request
              {
                Protocol.default_request with
                Protocol.rq_id = i;
                rq_program = "wc";
                rq_level = "O7";
                rq_deterministic = true;
              }
      else if i mod 4 = 3 && !entries <> [] then
        (* duplicate an earlier well-formed entry (fresh id, same
           fingerprint) — the dedup layer's bread and butter *)
        match
          List.find_opt
            (function Request _ -> true | Garbage _ -> false)
            !entries
        with
        | Some (Request r) -> Request { r with Protocol.rq_id = i }
        | _ -> fresh i
      else fresh i
    in
    entries := e :: !entries
  done;
  List.rev !entries

(* ---------------- replay ---------------- *)

type reply = {
  rp_entry : int;          (** index in the trace *)
  rp_latency_ms : float;
  rp_status : string;      (** envelope status, or ["transport"] *)
  rp_dedup : string;
  rp_json : string;        (** raw envelope (empty on transport failure) *)
}

type summary = {
  s_requests : int;
  s_ok : int;
  s_errors : int;              (** structured error envelopes (expected for
                                   the trace's malformed entries) *)
  s_transport_failures : int;  (** connections that died — 0 in a healthy run *)
  s_wall_s : float;
  s_throughput_rps : float;
  s_p50_ms : float;
  s_p95_ms : float;
  s_p99_ms : float;
  s_max_ms : float;
  s_stats_json : string;       (** the daemon's own counters after the replay *)
  s_replies : reply list;      (** trace order *)
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

(** Replay [trace] over [clients] concurrent connections (entry [i] goes
    to connection [i mod clients]); returns replies in trace order plus
    the daemon's post-replay stats. *)
let replay ~socket ?(clients = 4) (trace : entry list) : summary =
  let entries = Array.of_list trace in
  let n = Array.length entries in
  let replies = Array.make n None in
  let clients = max 1 clients in
  let worker c =
    match Client.connect socket with
    | exception _ ->
        for i = 0 to n - 1 do
          if i mod clients = c then
            replies.(i) <-
              Some
                { rp_entry = i; rp_latency_ms = 0.0; rp_status = "transport";
                  rp_dedup = "none"; rp_json = "" }
        done
    | conn ->
        for i = 0 to n - 1 do
          if i mod clients = c then begin
            let t0 = Unix.gettimeofday () in
            let answer =
              match entries.(i) with
              | Request rq -> Client.rpc conn rq
              | Garbage bytes ->
                  if Client.send_payload conn bytes then
                    Client.read_response conn
                  else Error Protocol.Closed
            in
            let latency = (Unix.gettimeofday () -. t0) *. 1000.0 in
            let reply =
              match answer with
              | Ok json ->
                  let get k =
                    match Protocol.extract_field json k with
                    | Some v -> (
                        match Json.parse v with
                        | Ok (Json.Str s) -> s
                        | _ -> String.trim v)
                    | None -> ""
                  in
                  { rp_entry = i; rp_latency_ms = latency;
                    rp_status = get "status"; rp_dedup = get "dedup";
                    rp_json = json }
              | Error _ ->
                  { rp_entry = i; rp_latency_ms = latency;
                    rp_status = "transport"; rp_dedup = "none"; rp_json = "" }
            in
            replies.(i) <- Some reply
          end
        done;
        Client.close conn
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun c -> Thread.create worker c)
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let stats_json =
    match Client.connect socket with
    | exception _ -> "{}"
    | conn ->
        let r =
          match
            Client.rpc conn
              { Protocol.default_request with Protocol.rq_kind = Protocol.Stats }
          with
          | Ok json -> (
              match Protocol.extract_field json "result" with
              | Some v -> v
              | None -> "{}")
          | Error _ -> "{}"
        in
        Client.close conn;
        r
  in
  let replies =
    Array.to_list replies
    |> List.map (function
         | Some r -> r
         | None ->
             { rp_entry = -1; rp_latency_ms = 0.0; rp_status = "transport";
               rp_dedup = "none"; rp_json = "" })
  in
  let count p = List.length (List.filter p replies) in
  let lat =
    replies
    |> List.filter (fun r -> r.rp_status <> "transport")
    |> List.map (fun r -> r.rp_latency_ms)
    |> Array.of_list
  in
  Array.sort compare lat;
  {
    s_requests = n;
    s_ok = count (fun r -> r.rp_status = "ok");
    s_errors = count (fun r -> r.rp_status = "error");
    s_transport_failures = count (fun r -> r.rp_status = "transport");
    s_wall_s = wall;
    s_throughput_rps = (if wall > 0.0 then float_of_int n /. wall else 0.0);
    s_p50_ms = percentile lat 0.50;
    s_p95_ms = percentile lat 0.95;
    s_p99_ms = percentile lat 0.99;
    s_max_ms = (if Array.length lat = 0 then 0.0 else lat.(Array.length lat - 1));
    s_stats_json = stats_json;
    s_replies = replies;
  }

(** Pull an integer counter out of the daemon-stats document. *)
let stat summary name =
  match Json.parse summary.s_stats_json with
  | Ok j -> (
      match Option.bind (Json.mem j name) Json.int_ with
      | Some v -> v
      | None -> 0)
  | Error _ -> 0

let summary_to_json ?(label = "serve") s =
  Printf.sprintf
    "{\"label\": \"%s\", \"requests\": %d, \"ok\": %d, \"errors\": %d, \
     \"transport_failures\": %d, \"wall_s\": %.3f, \"throughput_rps\": \
     %.1f, \"latency_ms\": {\"p50\": %.2f, \"p95\": %.2f, \"p99\": %.2f, \
     \"max\": %.2f}, \"daemon\": %s}"
    (Json.escape label) s.s_requests s.s_ok s.s_errors s.s_transport_failures
    s.s_wall_s s.s_throughput_rps s.s_p50_ms s.s_p95_ms s.s_p99_ms s.s_max_ms
    (if s.s_stats_json = "" then "{}" else s.s_stats_json)

(** Start an in-process daemon, replay a synthetic trace, stop it.
    Returns the summary and whether the run was healthy: zero transport
    failures, every entry answered, daemon counters consistent, and —
    the point of the batching layer — at least one dedup hit. *)
let run ?(n = 48) ?(clients = 4) ?seed () : summary * bool =
  let daemon = Serve.start () in
  let finally () = Serve.stop daemon in
  Fun.protect ~finally (fun () ->
      let trace = synthetic_trace ?seed n in
      let s = replay ~socket:(Serve.socket_path daemon) ~clients trace in
      let healthy =
        s.s_transport_failures = 0
        && s.s_ok + s.s_errors = s.s_requests
        && s.s_errors > 0 (* the malformed entries must be *answered* *)
        && stat s "dedup_hits" > 0
        && stat s "executed" <= stat s "requests"
      in
      (s, healthy))
