(** Shared experiment plumbing: compile a corpus program at a level (linking
    the level's libc variant), run the symbolic executor and/or the concrete
    interpreter, and collect everything the tables need. *)

module Ir = Overify_ir.Ir
module Costmodel = Overify_opt.Costmodel
module Pipeline = Overify_opt.Pipeline
module Engine = Overify_symex.Engine
module Interp = Overify_interp.Interp
module Programs = Overify_corpus.Programs
module Workload = Overify_corpus.Workload
module Vclib = Overify_vclib.Vclib

type compiled = {
  program : Programs.t;
  level : Costmodel.t;
  modul : Ir.modul;
  opt_stats : Overify_opt.Stats.t;
  t_compile : float;  (** seconds *)
  size : int;         (** static instruction count *)
}

(** Compile [program] at [level], linking the libc variant the level asks
    for. *)
let compile (level : Costmodel.t) (program : Programs.t) : compiled =
  let t0 = Unix.gettimeofday () in
  let m0 =
    Overify_minic.Frontend.compile_sources
      [ Vclib.for_cost_model level; program.Programs.source ]
  in
  let r = Pipeline.optimize level m0 in
  let t_compile = Unix.gettimeofday () -. t0 in
  {
    program;
    level;
    modul = r.Pipeline.modul;
    opt_stats = r.Pipeline.stats;
    t_compile;
    size =
      List.fold_left
        (fun acc f -> acc + Ir.func_size f)
        0 r.Pipeline.modul.Ir.funcs;
  }

(** Symbolically execute a compiled program.  [jobs > 1] explores on that
    many domains ([`Parallel jobs]); the default is the sequential DFS
    searcher.  [solver_cache] / [cache_dir] select the solver acceleration
    layers (see [Overify_solver.Solver]) — they never change the result.
    [summaries] selects compositional exploration via cached function
    summaries ([Engine.config.summaries]); verdicts are unchanged, only
    effort counters move.  [store] passes an already-open persistent store
    (the serve daemon's warm one) instead of loading from [cache_dir].
    [faults] / [checkpoint_dir] / [resume] are the hardening knobs (chaos
    schedules and kill/resume; see [Overify_fault.Fault] and
    [Engine.config]). *)
let verify ?(input_size = 4) ?(timeout = 30.0) ?(check_bounds = true)
    ?(jobs = 1) ?summaries ?solver_cache ?cache_dir ?store ?faults
    ?checkpoint_dir ?(checkpoint_every = 64) ?(resume = false) ?span
    (c : compiled) : Engine.result =
  let searcher = if jobs > 1 then `Parallel jobs else `Dfs in
  let summaries =
    match summaries with
    | Some s -> s
    | None -> Engine.default_config.Engine.summaries
  in
  Engine.run
    ~config:
      {
        Engine.default_config with
        input_size;
        timeout;
        check_bounds;
        searcher;
        summaries;
        solver_cache;
        cache_dir;
        store;
        faults;
        checkpoint_dir;
        checkpoint_every;
        resume;
        span;
      }
    c.modul

(** Sequential-vs-parallel comparison of one compiled program: runs the same
    exploration with [`Dfs] and with [`Parallel jobs] and reports both
    results plus the wall-clock speedup.  Used by the parallel benchmark and
    recorded in experiment rows (worker count and speedup). *)
type parallel_measurement = {
  seq : Engine.result;
  par : Engine.result;
  jobs : int;
  speedup : float;          (** t_seq / t_par *)
  deterministic : bool;
      (** both runs complete and agree on paths, exit codes, bugs and
          coverage — the engine's determinism contract holding in practice *)
}

let measure_parallel ?(input_size = 4) ?(timeout = 30.0)
    ?(check_bounds = true) ~jobs (c : compiled) : parallel_measurement =
  let seq = verify ~input_size ~timeout ~check_bounds ~jobs:1 c in
  let par = verify ~input_size ~timeout ~check_bounds ~jobs c in
  let deterministic =
    seq.Engine.complete && par.Engine.complete
    && seq.Engine.paths = par.Engine.paths
    && seq.Engine.exit_codes = par.Engine.exit_codes
    && seq.Engine.bugs = par.Engine.bugs
    && seq.Engine.blocks_covered = par.Engine.blocks_covered
  in
  let speedup =
    if par.Engine.time > 0.0 then seq.Engine.time /. par.Engine.time else 1.0
  in
  { seq; par; jobs; speedup; deterministic }

(** Concrete run on one input. *)
let run_concrete (c : compiled) ~input : Interp.result =
  Interp.run c.modul ~input

(** Average simulated cycles over a deterministic text workload. *)
let measure_cycles ?(runs = 16) ?(size = 14) (c : compiled) : float =
  let inputs = Workload.batch ~seed:42 ~size ~count:runs in
  let total =
    List.fold_left
      (fun acc input ->
        let r = run_concrete c ~input in
        acc + r.Interp.cycles)
      0 inputs
  in
  float_of_int total /. float_of_int runs

(** Wall time of interpreting the same workload (the paper's t_run). *)
let measure_run_time ?(runs = 16) ?(size = 14) (c : compiled) : float =
  let inputs = Workload.batch ~seed:42 ~size ~count:runs in
  let t0 = Unix.gettimeofday () in
  List.iter (fun input -> ignore (run_concrete c ~input)) inputs;
  (Unix.gettimeofday () -. t0) /. float_of_int runs
