(** Cooperative cancellation tokens.

    A token is an atomic flag plus a reason string, optionally armed with
    an absolute deadline.  Long-running work (the symbolic-execution
    worklist, the solver's query entry point) polls {!check} at its
    cooperative points; an external party (the serve daemon's watchdog)
    calls {!cancel} to stop a wedged job it cannot reach any other way.

    Deadline-aware: {!check} self-cancels the token — with reason
    ["deadline exceeded"] — the first time it is consulted past the
    token's deadline, so a deadline set at request admission covers queue
    wait, compile, symex and solve without any thread having to watch the
    clock for the common case.

    Lives in [Overify_fault] because this library is deliberately
    dependency-free (stdlib + [Unix]), so every layer can thread a token
    through without cycles. *)

type t

(** Raised by {!check} on a cancelled token, carrying the reason. *)
exception Cancelled of string

val create : ?deadline:float -> ?now:(unit -> float) -> unit -> t
(** Fresh, un-cancelled token.  [deadline] is an absolute
    [Unix.gettimeofday] instant past which {!check} self-cancels.  [now]
    overrides the clock (tests only). *)

val cancel : t -> reason:string -> unit
(** Set the token.  Idempotent; the first reason wins.  Safe from any
    thread. *)

val cancelled : t -> bool
(** The token has been set (explicitly or by a deadline self-cancel).
    Does {e not} consult the deadline — a pure flag read, which is what a
    deliberately-stuck query (the [stall] fault) polls so that only an
    explicit {!cancel} can free it. *)

val reason : t -> string
(** The cancellation reason, or [""] if not cancelled. *)

val deadline : t -> float option

val check : t option -> unit
(** Cooperative cancellation point: self-cancels past the deadline, then
    raises {!Cancelled} if the token is set.  [check None] is free. *)
