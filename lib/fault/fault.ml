type kind =
  | Solver_timeout
  | Store_corrupt
  | Store_partial
  | Alloc_fail
  | Worker_crash
  | Kill
  | Solver_stall

exception Crash of string
exception Killed of string

let kind_name = function
  | Solver_timeout -> "timeout"
  | Store_corrupt -> "corrupt"
  | Store_partial -> "partial"
  | Alloc_fail -> "alloc"
  | Worker_crash -> "crash"
  | Kill -> "kill"
  | Solver_stall -> "stall"

let all_kinds =
  [
    Solver_timeout;
    Store_corrupt;
    Store_partial;
    Alloc_fail;
    Worker_crash;
    Kill;
    Solver_stall;
  ]

let kind_index = function
  | Solver_timeout -> 0
  | Store_corrupt -> 1
  | Store_partial -> 2
  | Alloc_fail -> 3
  | Worker_crash -> 4
  | Kill -> 5
  | Solver_stall -> 6

let nkinds = 7

type site = {
  triggers : int list; (* sorted visit numbers (1-based) at which to fire *)
  visits : int Atomic.t;
  fired : int Atomic.t;
}

type t = { spec : string; sites : site array (* indexed by kind_index *) }

let spec t = t.spec

(* Seeded expansion: a small LCG over {timeout, alloc, crash}.  Store
   corruption and kill are opt-in only — random kills would make every
   seeded sweep a resume test, and store faults are invisible without a
   --cache-dir. *)
let expand_seed seed count =
  let state = ref (seed land 0x3FFFFFFF) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  List.init count (fun _ ->
      let k =
        match next () mod 3 with
        | 0 -> Solver_timeout
        | 1 -> Alloc_fail
        | _ -> Worker_crash
      in
      (k, 1 + (next () mod 400)))

let kind_of_site_name = function
  | "timeout" -> Some Solver_timeout
  | "corrupt" -> Some Store_corrupt
  | "partial" -> Some Store_partial
  | "alloc" -> Some Alloc_fail
  | "crash" -> Some Worker_crash
  | "kill" -> Some Kill
  | "stall" -> Some Solver_stall
  | _ -> None

let parse s =
  let entries =
    String.split_on_char ',' (String.map (function ';' -> ',' | c -> c) s)
    |> List.map String.trim
    |> List.filter (fun e -> e <> "")
  in
  let exception Bad of string in
  try
    if entries = [] then raise (Bad "empty fault spec");
    let events =
      List.concat_map
        (fun entry ->
          let seeded s count_s =
            let seed =
              match int_of_string_opt s with
              | Some seed -> seed
              | None -> raise (Bad (Printf.sprintf "bad seed in %S" entry))
            in
            let count =
              match count_s with
              | None -> 3
              | Some c -> (
                  match int_of_string_opt c with
                  | Some n when n > 0 -> n
                  | _ -> raise (Bad (Printf.sprintf "bad seed count in %S" entry)))
            in
            expand_seed seed count
          in
          match String.split_on_char ':' entry with
          | [ "seed"; s ] -> seeded s None
          | [ "seed"; s; c ] -> seeded s (Some c)
          | _ -> (
              match String.index_opt entry '@' with
              | None ->
                  raise
                    (Bad
                       (Printf.sprintf
                          "bad fault entry %S (expected site@N or seed:S[:K])"
                          entry))
              | Some i -> (
                  let site = String.sub entry 0 i in
                  let n = String.sub entry (i + 1) (String.length entry - i - 1) in
                  match (kind_of_site_name site, int_of_string_opt n) with
                  | Some k, Some v when v >= 1 -> [ (k, v) ]
                  | Some _, _ ->
                      raise
                        (Bad (Printf.sprintf "bad visit count in %S (want >= 1)" entry))
                  | None, _ ->
                      raise (Bad (Printf.sprintf "unknown fault site %S" site)))))
        entries
    in
    let sites =
      Array.init nkinds (fun i ->
          let triggers =
            List.filter_map
              (fun (k, v) -> if kind_index k = i then Some v else None)
              events
            |> List.sort_uniq compare
          in
          { triggers; visits = Atomic.make 0; fired = Atomic.make 0 })
    in
    Ok { spec = s; sites }
  with Bad msg -> Error msg

let of_env () =
  match Sys.getenv_opt "OVERIFY_FAULTS" with
  | None -> None
  | Some "" -> None
  | Some s -> (
      match parse s with
      | Ok t -> Some t
      | Error msg -> invalid_arg (Printf.sprintf "OVERIFY_FAULTS: %s" msg))

let fire sched kind =
  match sched with
  | None -> false
  | Some t ->
      let s = t.sites.(kind_index kind) in
      if s.triggers = [] then false
      else
        let visit = Atomic.fetch_and_add s.visits 1 + 1 in
        if List.mem visit s.triggers then (
          Atomic.incr s.fired;
          true)
        else false

let injected t =
  List.map
    (fun k -> (kind_name k, Atomic.get t.sites.(kind_index k).fired))
    all_kinds

let injected_total t =
  Array.fold_left (fun acc s -> acc + Atomic.get s.fired) 0 t.sites
