(** Deterministic fault injection.

    The chaos analogue of [Pipeline.sabotage]: a parsed schedule decides,
    per injection site, on which visit of that site a fault fires.  Sites
    keep atomic visit counters, so a schedule is a pure function of the
    visit sequence — under the sequential searcher the same program and
    schedule always fault at exactly the same point, which is what lets
    the chaos sweep assert two-run determinism.

    Spec grammar (comma- or semicolon-separated; [OVERIFY_FAULTS] or
    [--faults]):

    {v
      timeout@N   the N-th solver query raises Solver.Timeout
      corrupt@N   the N-th Store save flips a payload byte
      partial@N   the N-th Store save truncates the file mid-frame
      alloc@N     the N-th Alloca simulates allocation-budget exhaustion
      crash@N     the N-th executor step raises a contained worker crash
      kill@N      the N-th executor step raises an uncontainable Killed
                  (simulates SIGKILL; used by the kill/resume test)
      stall@N     the N-th solver query blocks until its cancellation
                  token fires (a stuck solver; without a token it raises
                  Solver.Timeout instead of hanging forever) — the
                  injectable wedge the serve watchdog recovers from
      seed:S[:K]  expand to K (default 3) pseudo-random entries drawn
                  from {timeout, alloc, crash} with an LCG seeded by S
    v}

    A site may appear several times ([alloc@2,alloc@5]). *)

type kind =
  | Solver_timeout
  | Store_corrupt
  | Store_partial
  | Alloc_fail
  | Worker_crash
  | Kill
  | Solver_stall

type t

(** Raised by an injected worker crash; the engine contains it per path. *)
exception Crash of string

(** Raised by an injected kill; deliberately NOT contained — it simulates
    the whole process dying (the checkpoint/resume story picks up from
    the last snapshot). *)
exception Killed of string

val kind_name : kind -> string
val all_kinds : kind list

(** Parse a schedule spec; [Error msg] on bad syntax. *)
val parse : string -> (t, string) result

(** Schedule from [OVERIFY_FAULTS], if set and non-empty.
    Raises [Invalid_argument] on a malformed value (fail fast — a typo'd
    chaos run silently running clean is worse than an error). *)
val of_env : unit -> t option

(** The spec string the schedule was parsed from. *)
val spec : t -> string

(** [fire sched kind] ticks the site's visit counter and reports whether
    a fault fires on this visit.  [fire None _] is false and free. *)
val fire : t option -> kind -> bool

(** Faults fired so far, per kind (all kinds, zeros included; stable
    order = [all_kinds]). *)
val injected : t -> (string * int) list

(** Total faults fired so far. *)
val injected_total : t -> int
