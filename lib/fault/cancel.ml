type t = {
  flag : bool Atomic.t;
  mutable why : string; (* written once, before [flag] is set *)
  deadline : float option;
  now : unit -> float;
}

exception Cancelled of string

let create ?deadline ?(now = fun () -> Unix.gettimeofday ()) () =
  { flag = Atomic.make false; why = ""; deadline; now }

let cancel t ~reason =
  (* First reason wins: the flag is the publication point, so [why] must
     be in place before it flips. *)
  if not (Atomic.get t.flag) then begin
    t.why <- reason;
    ignore (Atomic.compare_and_set t.flag false true)
  end

let cancelled t = Atomic.get t.flag
let reason t = if Atomic.get t.flag then t.why else ""
let deadline t = t.deadline

let check = function
  | None -> ()
  | Some t ->
      (match t.deadline with
      | Some d when (not (Atomic.get t.flag)) && t.now () > d ->
          cancel t ~reason:"deadline exceeded"
      | _ -> ());
      if Atomic.get t.flag then raise (Cancelled t.why)
