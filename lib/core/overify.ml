(** Public facade of the -OVERIFY reproduction.

    Typical use:
    {[
      let m = Overify.compile ~level:Overify.Costmodel.overify src in
      let report = Overify.verify m ~input_size:6 in
      Printf.printf "%d paths\n" report.Overify.Engine.paths
    ]} *)

module Ir = Overify_ir.Ir
module Printer = Overify_ir.Printer
module Verify_ir = Overify_ir.Verify
module Frontend = Overify_minic.Frontend
module Costmodel = Overify_opt.Costmodel
module Pipeline = Overify_opt.Pipeline
module Opt_stats = Overify_opt.Stats
module Engine = Overify_symex.Engine
module Interp = Overify_interp.Interp
module Vclib = Overify_vclib.Vclib
module Tv = Overify_tv.Tv
module Tv_product = Overify_tv.Product
module Programs = Overify_corpus.Programs
module Workload = Overify_corpus.Workload
module Obs = Overify_obs.Obs
module Fault = Overify_fault.Fault
module Checkpoint = Overify_symex.Checkpoint
module Interval = Overify_absint.Interval
module Absint = Overify_absint.Analysis
module Precision = Overify_absint.Precision
module Store = Overify_solver.Store
module Summary = Overify_summary.Summary
module Serve = Overify_serve.Serve
module Serve_client = Overify_serve.Client
module Serve_protocol = Overify_serve.Protocol
module Serve_json = Overify_serve.Json
module Serve_flight = Overify_serve.Flight
module Serve_log = Overify_serve.Log

(** Compile MiniC source at an optimization level.  [link_libc] (default
    true) links the libc variant the level selects, like the paper's build
    chain does. *)
let compile ?(level = Costmodel.overify) ?(link_libc = true) (src : string) :
    Ir.modul =
  let sources =
    if link_libc then [ Vclib.for_cost_model level; src ] else [ src ]
  in
  let m = Frontend.compile_sources sources in
  (Pipeline.optimize level m).Pipeline.modul

(** Compile and also return the transformation statistics. *)
let compile_with_stats ?(level = Costmodel.overify) ?(link_libc = true) src =
  let sources =
    if link_libc then [ Vclib.for_cost_model level; src ] else [ src ]
  in
  let m = Frontend.compile_sources sources in
  let r = Pipeline.optimize level m in
  (r.Pipeline.modul, r.Pipeline.stats)

(** Compile like {!compile}, but translation-validate every optimization
    pass application along the way: each (before, after) module pair the
    pipeline reports is checked for observable equivalence with the
    symbolic engine (see [lib/tv]).  Returns the compiled result together
    with the per-pass validation report; a [Tv.Counterexample] record names
    the offending pass. *)
let compile_validated ?(level = Costmodel.overify) ?(link_libc = true) ?budget
    (src : string) : Pipeline.result * Tv.report =
  let sources =
    if link_libc then [ Vclib.for_cost_model level; src ] else [ src ]
  in
  let m = Frontend.compile_sources sources in
  Tv.validate ?budget level m

(** Symbolically execute a module's [main] over [input_size] symbolic
    bytes.  [jobs > 1] runs the parallel multi-domain searcher; results are
    identical to the sequential ones for complete runs.  [solver_cache]
    toggles the solver acceleration chain's reuse layers (default: on,
    unless [OVERIFY_SOLVER_CACHE=0]); [cache_dir] attaches a persistent
    cross-run solver store so repeated verifications — including at other
    optimization levels — reuse each other's canonical verdicts.  Neither
    changes any result, only how often the SAT solver actually runs.

    [summaries] (default: the [OVERIFY_SUMMARIES] environment variable)
    turns on compositional exploration: per-function symbolic summaries
    are computed bottom-up (or loaded from the persistent store, keyed by
    structural fingerprint) and instantiated at call sites instead of
    inlining.  Verdicts are identical; only the effort counters move.

    Hardening: [faults] attaches a deterministic fault-injection schedule
    (chaos testing; see {!Fault}); [checkpoint_dir] writes periodic atomic
    snapshots so a killed run can be continued with [resume:true]
    ([checkpoint_every] sets the cadence in completed paths).  Mid-run
    failures degrade rather than abort — see
    [Engine.result.degradations]. *)
let verify ?(input_size = 4) ?(timeout = 30.0) ?(jobs = 1) ?summaries
    ?solver_cache ?cache_dir ?store ?faults ?checkpoint_dir
    ?(checkpoint_every = 64) ?(resume = false) (m : Ir.modul) : Engine.result =
  let searcher = if jobs > 1 then `Parallel jobs else `Dfs in
  let summaries =
    match summaries with Some s -> s | None -> Engine.default_config.Engine.summaries
  in
  Engine.run
    ~config:
      {
        Engine.default_config with
        Engine.input_size;
        timeout;
        searcher;
        summaries;
        solver_cache;
        cache_dir;
        store;
        faults;
        checkpoint_dir;
        checkpoint_every;
        resume;
      }
    m

(** Concretely execute a module's [main] on [input]. *)
let run (m : Ir.modul) ~(input : string) : Interp.result =
  Interp.run m ~input
