(** Translation validation of optimization passes: see tv.mli. *)

module Ir = Overify_ir.Ir
module Pipeline = Overify_opt.Pipeline
module Costmodel = Overify_opt.Costmodel
module Engine = Overify_symex.Engine
module Interp = Overify_interp.Interp
module Obs = Overify_obs.Obs

type budget = {
  input_size : int;
  max_paths : int;
  max_insts : int;
  timeout : float;
  fallback_runs : int;
  fuel : int;
}

let default_budget =
  {
    input_size = 3;
    max_paths = 400;
    max_insts = 2_000_000;
    timeout = 3.0;
    fallback_runs = 32;
    fuel = 2_000_000;
  }

type behavior = {
  exit_code : int64;
  output : string;
  trap : string option;
}

type witness = {
  input : string;
  pre_behavior : behavior;
  post_behavior : behavior;
  detail : string;
}

type proof_kind = Syntactic | Exhaustive

type verdict =
  | Proved of proof_kind
  | Counterexample of witness
  | Inconclusive of string

type outcome = {
  verdict : verdict;
  paths : int;
  queries : int;
  solver_time : float;
  time : float;
  excused_pre_traps : int;
  fallback_runs : int;
}

(* ---------------- concrete replay ---------------- *)

(** Pad a symbolic witness to the symbolic input size, so [__input_size]
    agrees between the symbolic run and the concrete replay. *)
let pad_input size s =
  if String.length s >= size then s else s ^ String.make (size - String.length s) '\000'

let behavior_of ~fuel (m : Ir.modul) ~input : behavior =
  let r = Interp.run ~fuel m ~input in
  {
    exit_code = r.Interp.exit_code;
    output = r.Interp.output;
    trap = Option.map Interp.string_of_trap r.Interp.trap;
  }

(** Deterministic pseudo-random inputs (xorshift64) for the differential
    fallback; no wall-clock or global RNG so checks are reproducible. *)
let pseudo_random_inputs ~count ~size : string list =
  let s = ref 0x9E3779B97F4A7C15L in
  let next () =
    let x = !s in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    s := x;
    x
  in
  List.init count (fun _ ->
      String.init size (fun _ -> Char.chr (Int64.to_int (Int64.logand (next ()) 0xFFL))))

(* ---------------- verdict classification ---------------- *)

let strip_meta (m : Ir.modul) =
  { m with Ir.funcs = List.map (fun f -> { f with Ir.fmeta = [] }) m.Ir.funcs }

let is_a_side f =
  String.length f >= 6 && String.sub f 0 6 = Product.a_prefix || f = Product.emit_a

let is_b_side f =
  String.length f >= 6 && String.sub f 0 6 = Product.b_prefix || f = Product.emit_b

let unprefix f =
  if String.length f >= 6 && (String.sub f 0 6 = Product.a_prefix || String.sub f 0 6 = Product.b_prefix)
  then String.sub f 6 (String.length f - 6)
  else f

(** Build the witness record for a refuting input by replaying both
    versions through the concrete interpreter. *)
let make_witness ~budget ~pre ~post ~(bug : Engine.bug) : witness =
  let input = pad_input budget.input_size bug.Engine.input in
  let fuel = max budget.fuel 10_000_000 in
  let pre_behavior = behavior_of ~fuel pre ~input in
  let post_behavior = behavior_of ~fuel post ~input in
  let detail =
    if is_b_side bug.Engine.at_function then
      Printf.sprintf "introduced trap: %s in %s" bug.Engine.kind
        (unprefix bug.Engine.at_function)
    else if pre_behavior.exit_code <> post_behavior.exit_code then
      Printf.sprintf "exit code differs: %Ld vs %Ld" pre_behavior.exit_code
        post_behavior.exit_code
    else if pre_behavior.output <> post_behavior.output then "output trace differs"
    else "product assertion failed: " ^ bug.Engine.kind
  in
  { input; pre_behavior; post_behavior; detail }

(** Differential fallback when the symbolic budget runs out: replay the
    partial exploration's concrete path witnesses plus deterministic
    pseudo-random inputs through both versions. *)
let differential_fallback ~budget ~pre ~post (r : Engine.result) :
    (witness, int) Either.t =
  let from_paths =
    List.map (fun (w, _) -> w) r.Engine.exit_codes
    @ List.map (fun (b : Engine.bug) -> b.Engine.input) r.Engine.bugs
  in
  let inputs =
    List.map (pad_input budget.input_size) from_paths
    @ pseudo_random_inputs ~count:budget.fallback_runs ~size:budget.input_size
  in
  (* dedupe, keep order, bound the total work *)
  let seen = Hashtbl.create 16 in
  let inputs =
    List.filter
      (fun i ->
        if Hashtbl.mem seen i then false
        else (Hashtbl.add seen i (); true))
      inputs
  in
  let inputs =
    List.filteri (fun i _ -> i < budget.fallback_runs + 8) inputs
  in
  let ce = ref None in
  let runs = ref 0 in
  List.iter
    (fun input ->
      if !ce = None then begin
        incr runs;
        let bp = behavior_of ~fuel:budget.fuel pre ~input in
        match bp.trap with
        | Some t when t = Interp.string_of_trap Interp.Out_of_fuel -> ()
        | Some _ -> () (* pre-version traps: excused *)
        | None -> (
            let bq = behavior_of ~fuel:(4 * budget.fuel) post ~input in
            match bq.trap with
            | Some t when t = Interp.string_of_trap Interp.Out_of_fuel -> ()
            | Some t ->
                ce :=
                  Some
                    { input; pre_behavior = bp; post_behavior = bq;
                      detail = "introduced trap: " ^ t }
            | None ->
                if bp.exit_code <> bq.exit_code then
                  ce :=
                    Some
                      { input; pre_behavior = bp; post_behavior = bq;
                        detail =
                          Printf.sprintf "exit code differs: %Ld vs %Ld"
                            bp.exit_code bq.exit_code }
                else if bp.output <> bq.output then
                  ce :=
                    Some
                      { input; pre_behavior = bp; post_behavior = bq;
                        detail = "output trace differs" })
      end)
    inputs;
  match !ce with Some w -> Either.Left w | None -> Either.Right !runs

let check_modules ?(budget = default_budget) (pre : Ir.modul)
    (post : Ir.modul) : outcome =
  let t0 = Unix.gettimeofday () in
  let finish ?(paths = 0) ?(queries = 0) ?(solver_time = 0.0)
      ?(excused_pre_traps = 0) ?(fallback_runs = 0) verdict =
    {
      verdict;
      paths;
      queries;
      solver_time;
      time = Unix.gettimeofday () -. t0;
      excused_pre_traps;
      fallback_runs;
    }
  in
  if strip_meta pre = strip_meta post then finish (Proved Syntactic)
  else
    match (Ir.find_func pre "main", Ir.find_func post "main") with
    | (None, _) | (_, None) -> finish (Inconclusive "module has no main")
    | (Some fm, _) when fm.Ir.params <> [] ->
        finish (Inconclusive "main takes parameters")
    | (Some _, Some _) ->
        let product = Product.build ~pre ~post in
        let config =
          {
            Engine.default_config with
            Engine.input_size = budget.input_size;
            max_paths = budget.max_paths;
            max_insts = budget.max_insts;
            timeout = budget.timeout;
            searcher = `Dfs;
          }
        in
        let r = Engine.run ~config product in
        let mismatches =
          List.filter
            (fun (b : Engine.bug) ->
              (b.Engine.at_function = "main"
              && b.Engine.kind = "assertion failure")
              || is_b_side b.Engine.at_function)
            r.Engine.bugs
        in
        let excused =
          List.length
            (List.filter
               (fun (b : Engine.bug) -> is_a_side b.Engine.at_function)
               r.Engine.bugs)
        in
        let product_errors =
          List.filter
            (fun (b : Engine.bug) ->
              (not (is_a_side b.Engine.at_function))
              && (not (is_b_side b.Engine.at_function))
              && not
                   (b.Engine.at_function = "main"
                   && b.Engine.kind = "assertion failure"))
            r.Engine.bugs
        in
        let finish v =
          finish ~paths:r.Engine.paths ~queries:r.Engine.queries
            ~solver_time:r.Engine.solver_time ~excused_pre_traps:excused v
        in
        (match mismatches with
        | bug :: _ ->
            finish (Counterexample (make_witness ~budget ~pre ~post ~bug))
        | [] ->
            if product_errors <> [] then
              let b = List.hd product_errors in
              finish
                (Inconclusive
                   (Printf.sprintf "product exploration error: %s at %s"
                      b.Engine.kind b.Engine.at_function))
            else if r.Engine.complete then finish (Proved Exhaustive)
            else
              (* budget exhausted: bounded differential interpretation *)
              let reason =
                Printf.sprintf
                  "symbolic budget exhausted (%d paths, %d/%d insts, %.1fs)"
                  r.Engine.paths r.Engine.instructions budget.max_insts
                  budget.timeout
              in
              (match differential_fallback ~budget ~pre ~post r with
              | Either.Left w ->
                  {
                    (finish (Counterexample w)) with
                    fallback_runs = 1;
                  }
              | Either.Right runs ->
                  {
                    (finish
                       (Inconclusive
                          (Printf.sprintf "%s; %d differential runs agree"
                             reason runs)))
                    with
                    fallback_runs = runs;
                  }))

(* ---------------- whole-compilation validation ---------------- *)

type record = {
  pass : string;
  fn : string;
  outcome : outcome;
}

type report = {
  level : string;
  records : record list;
  time : float;
}

let obligation_verdict_name = function
  | Proved _ -> "proved"
  | Counterexample _ -> "counterexample"
  | Inconclusive _ -> "inconclusive"

(** Per-obligation observability: verdict counters and budget-spend timers
    in the global registry (labels: pass, verdict), plus one trace span per
    obligation.  All behind the global switches — the unobserved validation
    path records nothing. *)
let observe_obligation ~pass ~fn ~t0 (o : outcome) =
  let verdict = obligation_verdict_name o.verdict in
  if Obs.enabled () then begin
    Obs.Registry.incr
      (Obs.Registry.counter "tv_obligations"
         ~labels:[ ("pass", pass); ("verdict", verdict) ]);
    Obs.Registry.add_time
      (Obs.Registry.timer "tv_budget_spend" ~labels:[ ("pass", pass) ])
      o.time;
    Obs.Registry.add
      (Obs.Registry.counter "tv_queries" ~labels:[ ("pass", pass) ])
      o.queries
  end;
  if Obs.Trace.enabled () then
    Obs.Trace.emit ~cat:"tv"
      ~name:(Printf.sprintf "tv:%s(%s)" pass fn)
      ~args:
        [
          ("verdict", verdict);
          ("paths", string_of_int o.paths);
          ("queries", string_of_int o.queries);
          ("fallback_runs", string_of_int o.fallback_runs);
        ]
      ~ts:t0 ~dur:o.time ()

let validate ?budget (cm : Costmodel.t) (m : Ir.modul) :
    Pipeline.result * report =
  let t0 = Unix.gettimeofday () in
  let apps = ref [] in
  let observe ~pass ~fn ~before ~after =
    apps := (pass, fn, before, after) :: !apps
  in
  let res = Pipeline.optimize ~observe cm m in
  let records =
    List.rev_map
      (fun (pass, fn, before, after) ->
        let t_check = Unix.gettimeofday () in
        let outcome = check_modules ?budget before after in
        observe_obligation ~pass ~fn ~t0:t_check outcome;
        { pass; fn; outcome })
      !apps
  in
  (res, { level = cm.Costmodel.name; records; time = Unix.gettimeofday () -. t0 })

let is_ce r =
  match r.outcome.verdict with Counterexample _ -> true | _ -> false

let is_inconclusive r =
  match r.outcome.verdict with Inconclusive _ -> true | _ -> false

let first_offender report = List.find_opt is_ce report.records
let counterexamples report = List.filter is_ce report.records
let inconclusives report = List.filter is_inconclusive report.records

type pass_summary = {
  ps_pass : string;
  ps_applications : int;
  ps_proved : int;
  ps_refuted : int;
  ps_inconclusive : int;
  ps_queries : int;
  ps_time : float;
}

let summarize report : pass_summary list =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let s =
        match Hashtbl.find_opt tbl r.pass with
        | Some s -> s
        | None ->
            let s =
              {
                ps_pass = r.pass;
                ps_applications = 0;
                ps_proved = 0;
                ps_refuted = 0;
                ps_inconclusive = 0;
                ps_queries = 0;
                ps_time = 0.0;
              }
            in
            order := r.pass :: !order;
            s
      in
      let s =
        {
          s with
          ps_applications = s.ps_applications + 1;
          ps_proved =
            (s.ps_proved
            + match r.outcome.verdict with Proved _ -> 1 | _ -> 0);
          ps_refuted = (s.ps_refuted + if is_ce r then 1 else 0);
          ps_inconclusive =
            (s.ps_inconclusive + if is_inconclusive r then 1 else 0);
          ps_queries = s.ps_queries + r.outcome.queries;
          ps_time = s.ps_time +. r.outcome.time;
        }
      in
      Hashtbl.replace tbl r.pass s)
    report.records;
  List.rev_map (fun p -> Hashtbl.find tbl p) !order

let verdict_name = obligation_verdict_name

let hex_of_string s =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.init (String.length s) (fun i -> Char.code s.[i])))

let string_of_behavior b =
  match b.trap with
  | Some t -> Printf.sprintf "trap(%s)" t
  | None ->
      Printf.sprintf "exit=%Ld output=%s" b.exit_code (hex_of_string b.output)

let string_of_verdict = function
  | Proved Syntactic -> "proved (syntactic)"
  | Proved Exhaustive -> "proved (exhaustive symbolic exploration)"
  | Counterexample w ->
      Printf.sprintf "COUNTEREXAMPLE input=%s: %s [pre: %s] [post: %s]"
        (hex_of_string w.input) w.detail
        (string_of_behavior w.pre_behavior)
        (string_of_behavior w.post_behavior)
  | Inconclusive reason -> "inconclusive: " ^ reason

(* ---------------- JSON report ---------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let record_to_json r =
  let o = r.outcome in
  let extra =
    match o.verdict with
    | Proved k ->
        Printf.sprintf {|, "proof": "%s"|}
          (match k with Syntactic -> "syntactic" | Exhaustive -> "exhaustive")
    | Counterexample w ->
        Printf.sprintf {|, "input": "%s", "detail": "%s"|} (hex_of_string w.input)
          (json_escape w.detail)
    | Inconclusive reason ->
        Printf.sprintf {|, "reason": "%s"|} (json_escape reason)
  in
  Printf.sprintf
    {|    {"pass": "%s", "fn": "%s", "verdict": "%s"%s, "paths": %d, "queries": %d, "solver_time": %.3f, "time": %.3f, "excused_pre_traps": %d, "fallback_runs": %d}|}
    (json_escape r.pass) (json_escape r.fn)
    (verdict_name o.verdict)
    extra o.paths o.queries o.solver_time o.time o.excused_pre_traps
    o.fallback_runs

let summary_to_json s =
  Printf.sprintf
    {|    {"pass": "%s", "applications": %d, "proved": %d, "counterexamples": %d, "inconclusive": %d, "queries": %d, "time": %.3f}|}
    (json_escape s.ps_pass) s.ps_applications s.ps_proved s.ps_refuted
    s.ps_inconclusive s.ps_queries s.ps_time

let report_to_json report =
  Printf.sprintf
    {|{
  "level": "%s",
  "applications": %d,
  "counterexamples": %d,
  "inconclusive": %d,
  "time": %.3f,
  "records": [
%s
  ],
  "per_pass": [
%s
  ]
}|}
    (json_escape report.level)
    (List.length report.records)
    (List.length (counterexamples report))
    (List.length (inconclusives report))
    report.time
    (String.concat ",\n" (List.map record_to_json report.records))
    (String.concat ",\n" (List.map summary_to_json (summarize report)))
