(** Product-program construction for translation validation.

    Given the module before ([pre]) and after ([post]) one pass
    application, [build] produces a single module whose [main]:

    + runs the renamed pre-version [__tvA_main] to completion,
    + runs the renamed post-version [__tvB_main],
    + asserts that the return values and the captured [__output] traces
      agree byte for byte.

    Both sides read the {e same} symbolic [__input] bytes ([__input] is a
    pure indexed read in this IR, so no redirection is needed), while
    globals are duplicated per side and [__output] is redirected to a
    per-side capture buffer.  Exploring the product's [main] with the symex
    engine therefore checks observable equivalence on every path it covers.

    Because A runs to completion before B starts, any path on which A traps
    ends before B executes: pre-trapping executions are {e excused}, and any
    trap reported inside a [__tvB_]-prefixed function is a trap the pass
    {e introduced} — a counterexample (see DESIGN.md, "Translation
    validation"). *)

val out_cap : int
(** Capture-buffer capacity in bytes; traces are compared up to this many
    bytes (lengths are compared exactly regardless). *)

val a_prefix : string  (** ["__tvA_"] — pre-version namespace *)

val b_prefix : string  (** ["__tvB_"] — post-version namespace *)

val emit_a : string
val emit_b : string
(** Names of the generated per-side output-capture functions. *)

val build :
  pre:Overify_ir.Ir.modul -> post:Overify_ir.Ir.modul -> Overify_ir.Ir.modul
(** Build the product module.  Requires both versions to contain a [main];
    the caller checks this. *)
