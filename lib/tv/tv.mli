(** Translation validation: prove each optimization-pass application sound
    with the in-tree symbolic engine (see DESIGN.md, "Translation
    validation").

    For one (pre, post) module pair, {!check_modules} builds the product
    program ({!Product.build}), explores its [main] symbolically under a
    {!budget}, and classifies the result:

    - {e Proved}: exploration was complete and no equivalence assertion can
      fail — every non-trapping pre-execution within the input bound is
      reproduced exactly by the post-version (asymmetric refinement: paths
      on which the {e pre}-version traps are excused).
    - {e Counterexample}: a concrete input on which the two versions
      observably disagree (exit code, output trace, or a trap the pass
      introduced), replayed through the concrete interpreter.
    - {e Inconclusive}: the symbolic budget ran out.  The checker then
      falls back to bounded differential interpretation on concrete inputs
      (path witnesses from the partial exploration plus deterministic
      pseudo-random inputs); disagreement still yields a counterexample,
      agreement yields [Inconclusive] with an explicit budget-exhausted
      reason.

    {!validate} taps {!Overify_opt.Pipeline.optimize}'s observer stream and
    checks {e every} pass application of a compilation, producing a
    machine-readable per-pass report; since the observed (before, after)
    chain composes to the whole compilation, the first counterexample names
    the offending pass ({!first_offender}) — automatic pass bisection. *)

module Ir = Overify_ir.Ir

(** Exploration budget for one pass-application check. *)
type budget = {
  input_size : int;      (** symbolic input bytes *)
  max_paths : int;
  max_insts : int;
  timeout : float;       (** seconds of symbolic exploration *)
  fallback_runs : int;   (** differential interpretations when inconclusive *)
  fuel : int;            (** interpreter instruction budget per run *)
}

val default_budget : budget

(** Observable behavior of one version on one concrete input. *)
type behavior = {
  exit_code : int64;
  output : string;
  trap : string option;
}

(** A concrete input on which pre and post observably disagree. *)
type witness = {
  input : string;
  pre_behavior : behavior;
  post_behavior : behavior;
  detail : string;  (** what disagrees, e.g. ["introduced trap: division by zero in f"] *)
}

type proof_kind =
  | Syntactic   (** modules identical up to [fmeta] — no exploration needed *)
  | Exhaustive  (** complete symbolic exploration of the product *)

type verdict =
  | Proved of proof_kind
  | Counterexample of witness
  | Inconclusive of string  (** always contains the budget-exhausted reason *)

type outcome = {
  verdict : verdict;
  paths : int;             (** product paths completed *)
  queries : int;           (** solver queries issued *)
  solver_time : float;
  time : float;            (** total check time, seconds *)
  excused_pre_traps : int; (** bug reports excused because the pre-version trapped first *)
  fallback_runs : int;     (** differential interpretations performed *)
}

val check_modules : ?budget:budget -> Ir.modul -> Ir.modul -> outcome
(** [check_modules pre post] checks that [post] refines [pre] on the
    product program. *)

(** {2 Whole-compilation validation} *)

(** One validated pass application, in application order. *)
type record = {
  pass : string;
  fn : string;  (** function transformed, ["*"] for module-level passes *)
  outcome : outcome;
}

type report = {
  level : string;         (** cost-model name, e.g. ["overify"] *)
  records : record list;  (** in application order *)
  time : float;
}

val validate :
  ?budget:budget ->
  Overify_opt.Costmodel.t ->
  Ir.modul ->
  Overify_opt.Pipeline.result * report
(** Optimize [m] at the given level while translation-validating every pass
    application.  The compiled result is the same module an unobserved
    [Pipeline.optimize] produces. *)

val first_offender : report -> record option
(** First pass application with a [Counterexample] verdict — the pass the
    bisection blames. *)

val counterexamples : report -> record list
val inconclusives : report -> record list

(** Aggregated per-pass rollup of a report. *)
type pass_summary = {
  ps_pass : string;
  ps_applications : int;
  ps_proved : int;
  ps_refuted : int;
  ps_inconclusive : int;
  ps_queries : int;
  ps_time : float;
}

val summarize : report -> pass_summary list
(** One row per pass name, in first-application order. *)

val verdict_name : verdict -> string
(** ["proved"], ["counterexample"] or ["inconclusive"]. *)

val string_of_verdict : verdict -> string
(** Human-readable one-liner, with witness/reason detail. *)

val report_to_json : report -> string
(** Machine-readable report: level, per-record pass/fn/verdict with solver
    statistics, and the per-pass rollup. *)
