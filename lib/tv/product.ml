(** Product-program construction: see product.mli and DESIGN.md. *)

module Ir = Overify_ir.Ir
module Builder = Overify_ir.Builder

let out_cap = 512
let a_prefix = "__tvA_"
let b_prefix = "__tvB_"
let len_a = "__tv_lenA"
let len_b = "__tv_lenB"
let out_a = "__tv_outA"
let out_b = "__tv_outB"
let emit_a = "__tv_emitA"
let emit_b = "__tv_emitB"

(** Rename one version into its own namespace: every defined function and
    every global gets [prefix]; calls to [__output] are redirected to the
    side's capture function [emit].  Intrinsics other than [__output] are
    shared — in particular [__input], whose indexed reads make the symbolic
    input common to both sides by construction. *)
let rename_side ~(prefix : string) ~(emit : string) (m : Ir.modul) :
    Ir.global list * Ir.func list =
  let fnames = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace fnames f.Ir.fname ()) m.Ir.funcs;
  let ren_call name =
    if name = "__output" then emit
    else if Hashtbl.mem fnames name then prefix ^ name
    else name
  in
  let mv = function Ir.Glob g -> Ir.Glob (prefix ^ g) | v -> v in
  let map_inst = function
    | Ir.Bin (d, op, ty, a, b) -> Ir.Bin (d, op, ty, mv a, mv b)
    | Ir.Cmp (d, c, ty, a, b) -> Ir.Cmp (d, c, ty, mv a, mv b)
    | Ir.Select (d, ty, c, a, b) -> Ir.Select (d, ty, mv c, mv a, mv b)
    | Ir.Cast (d, op, t1, v, t2) -> Ir.Cast (d, op, t1, mv v, t2)
    | Ir.Alloca _ as i -> i
    | Ir.Load (d, ty, p) -> Ir.Load (d, ty, mv p)
    | Ir.Store (ty, v, p) -> Ir.Store (ty, mv v, mv p)
    | Ir.Gep (d, base, s, i) -> Ir.Gep (d, mv base, s, mv i)
    | Ir.Call (d, ty, name, args) ->
        Ir.Call (d, ty, ren_call name, List.map mv args)
    | Ir.Phi (d, ty, incs) ->
        Ir.Phi (d, ty, List.map (fun (l, v) -> (l, mv v)) incs)
  in
  let map_term = function
    | Ir.Cbr (c, a, b) -> Ir.Cbr (mv c, a, b)
    | Ir.Ret (Some v) -> Ir.Ret (Some (mv v))
    | t -> t
  in
  let globals =
    List.map
      (fun (g : Ir.global) -> { g with Ir.gname = prefix ^ g.Ir.gname })
      m.Ir.globals
  in
  let funcs =
    List.map
      (fun (f : Ir.func) ->
        {
          f with
          Ir.fname = prefix ^ f.Ir.fname;
          Ir.blocks =
            List.map
              (fun (bl : Ir.block) ->
                {
                  bl with
                  Ir.insts = List.map map_inst bl.Ir.insts;
                  Ir.term = map_term bl.Ir.term;
                })
              f.Ir.blocks;
        })
      m.Ir.funcs
  in
  (globals, funcs)

let i32 v = Ir.imm Ir.I32 (Int64.of_int v)

(** [emit(c)]: append the low byte of [c] to the side's capture buffer.
    The store is guarded by [len < out_cap] so the product itself never
    faults; the length counter keeps counting past the cap so a pure
    length difference beyond the cap is still caught. *)
let build_emit ~(name : string) ~(len_glob : string) ~(out_glob : string) :
    Ir.func =
  let b = Builder.create ~name ~params:[ Ir.I32 ] ~ret:Ir.Void in
  let c =
    match Builder.param_regs b with [ r ] -> Ir.Reg r | _ -> assert false
  in
  let store_blk = Builder.new_block b in
  let bump = Builder.new_block b in
  let len = Builder.load b Ir.I32 (Ir.Glob len_glob) in
  let inb = Builder.cmp b Ir.Ult Ir.I32 len (i32 out_cap) in
  Builder.term b (Ir.Cbr (inb, store_blk, bump));
  Builder.switch_to b store_blk;
  let p = Builder.gep b (Ir.Glob out_glob) 1 len in
  let c8 = Builder.cast b Ir.Trunc Ir.I8 c Ir.I32 in
  Builder.store b Ir.I8 c8 p;
  Builder.term b (Ir.Br bump);
  Builder.switch_to b bump;
  let len' = Builder.bin b Ir.Add Ir.I32 len (i32 1) in
  Builder.store b Ir.I32 len' (Ir.Glob len_glob);
  Builder.term b (Ir.Ret None);
  Builder.finish b

(** The product [main]: run A, run B, assert equal results and equal
    captured traces, return A's exit code. *)
let build_main ~(main_ret : Ir.ty) : Ir.func =
  let b = Builder.create ~name:"main" ~params:[] ~ret:Ir.I32 in
  let assert_i1 v =
    let v32 = Builder.cast b Ir.Zext Ir.I32 v Ir.I1 in
    ignore (Builder.call b Ir.Void "__assert" [ v32 ])
  in
  let ip = Builder.entry_alloca b Ir.I32 1 in
  let ra = Builder.call b main_ret (a_prefix ^ "main") [] in
  let rb = Builder.call b main_ret (b_prefix ^ "main") [] in
  (match (ra, rb) with
  | (Some va, Some vb) when Ir.is_int_ty main_ret ->
      assert_i1 (Builder.cmp b Ir.Eq main_ret va vb)
  | _ -> ());
  let la = Builder.load b Ir.I32 (Ir.Glob len_a) in
  let lb = Builder.load b Ir.I32 (Ir.Glob len_b) in
  assert_i1 (Builder.cmp b Ir.Eq Ir.I32 la lb);
  (* compare byte-for-byte up to min(len, cap) *)
  let small = Builder.cmp b Ir.Ult Ir.I32 la (i32 out_cap) in
  let n = Builder.select b Ir.I32 small la (i32 out_cap) in
  Builder.store b Ir.I32 (i32 0) ip;
  let head = Builder.new_block b in
  let body = Builder.new_block b in
  let fin = Builder.new_block b in
  Builder.term b (Ir.Br head);
  Builder.switch_to b head;
  let i = Builder.load b Ir.I32 ip in
  let cont = Builder.cmp b Ir.Ult Ir.I32 i n in
  Builder.term b (Ir.Cbr (cont, body, fin));
  Builder.switch_to b body;
  let pa = Builder.gep b (Ir.Glob out_a) 1 i in
  let pb = Builder.gep b (Ir.Glob out_b) 1 i in
  let ba = Builder.load b Ir.I8 pa in
  let bb = Builder.load b Ir.I8 pb in
  assert_i1 (Builder.cmp b Ir.Eq Ir.I8 ba bb);
  let i' = Builder.bin b Ir.Add Ir.I32 i (i32 1) in
  Builder.store b Ir.I32 i' ip;
  Builder.term b (Ir.Br head);
  Builder.switch_to b fin;
  let ret_val =
    match ra with Some v when main_ret = Ir.I32 -> v | _ -> i32 0
  in
  Builder.term b (Ir.Ret (Some ret_val));
  Builder.finish b

let build ~(pre : Ir.modul) ~(post : Ir.modul) : Ir.modul =
  let (ga, fa) = rename_side ~prefix:a_prefix ~emit:emit_a pre in
  let (gb, fb) = rename_side ~prefix:b_prefix ~emit:emit_b post in
  let mk_glob name size =
    { Ir.gname = name; gsize = size; ginit = String.make size '\000';
      gconst = false }
  in
  let main_ret =
    match Ir.find_func pre "main" with Some f -> f.Ir.ret | None -> Ir.I32
  in
  {
    Ir.globals =
      ga @ gb
      @ [ mk_glob len_a 4; mk_glob len_b 4; mk_glob out_a out_cap;
          mk_glob out_b out_cap ];
    funcs =
      fa @ fb
      @ [
          build_emit ~name:emit_a ~len_glob:len_a ~out_glob:out_a;
          build_emit ~name:emit_b ~len_glob:len_b ~out_glob:out_b;
          build_main ~main_ret;
        ];
  }
