(** Symbolic byte-granular memory with copy-on-write objects.

    Each object is an array of 8-bit terms.  Reads and writes at concrete
    offsets touch the exact cells; symbolic offsets build ITE chains over
    every in-bounds position (KLEE's array selects, materialized eagerly).
    States share objects structurally; every write replaces the object's
    cell array, so forked states never observe each other's writes. *)

module Bv = Overify_solver.Bv
module IMap = Map.Make (Int)

type obj = {
  size : int;
  cells : Bv.t array;
  writable : bool;
  live : bool;
}

type t = {
  objs : obj IMap.t;
  next_obj : int;
}

type access_error =
  | Out_of_bounds of { size : int; offset : string; width : int }
  | Dead_object
  | Read_only
  | Too_wide_ite  (** symbolic offset over an object above the ITE cap *)

let ite_cap = 1200

let empty = { objs = IMap.empty; next_obj = 1 }

let alloc ?(writable = true) (m : t) ~size : t * int =
  let id = m.next_obj in
  let o =
    { size; cells = Array.make (max size 1) (Bv.const 8 0L); writable; live = true }
  in
  ({ objs = IMap.add id o m.objs; next_obj = id + 1 }, id)

(** Allocate and initialize from a byte string (globals). *)
let alloc_bytes ?(writable = true) (m : t) (img : string) ~size : t * int =
  let (m, id) = alloc ~writable m ~size in
  let o = IMap.find id m.objs in
  String.iteri
    (fun i c ->
      if i < size then o.cells.(i) <- Bv.const 8 (Int64.of_int (Char.code c)))
    img;
  (m, id)

(** Install symbolic bytes (the program input). *)
let alloc_symbolic (m : t) ~(vars : int array) : t * int =
  let (m, id) = alloc m ~size:(Array.length vars) in
  let o = IMap.find id m.objs in
  Array.iteri (fun i v -> o.cells.(i) <- Bv.var 8 v) vars;
  (m, id)

let find (m : t) id = IMap.find_opt id m.objs

let kill (m : t) id =
  match IMap.find_opt id m.objs with
  | Some o -> { m with objs = IMap.add id { o with live = false } m.objs }
  | None -> m

(* assemble [width] bytes starting at concrete offset, little-endian *)
let read_concrete (o : obj) off width : Bv.t =
  let v = ref o.cells.(off) in
  for i = 1 to width - 1 do
    v := Bv.concat o.cells.(off + i) !v
  done;
  !v

let write_concrete (o : obj) off width (v : Bv.t) : obj =
  let cells = Array.copy o.cells in
  for i = 0 to width - 1 do
    cells.(off + i) <- Bv.extract ~hi:((8 * i) + 7) ~lo:(8 * i) v
  done;
  { o with cells }

(** Read [width] bytes at [off] (a 64-bit term). *)
let read (m : t) ~obj ~(off : Bv.t) ~width : (Bv.t, access_error) result =
  match IMap.find_opt obj m.objs with
  | None -> Error Dead_object
  | Some o ->
      if not o.live then Error Dead_object
      else begin
        match off.Bv.node with
        | Bv.Const c ->
            let c = Int64.to_int c in
            if c < 0 || c + width > o.size then
              Error
                (Out_of_bounds
                   { size = o.size; offset = string_of_int c; width })
            else Ok (read_concrete o c width)
        | _ ->
            (* symbolic offset: ITE chain over in-bounds positions; the
               caller has already constrained the offset to be in bounds *)
            let span = o.size - width in
            if span < 0 then
              Error
                (Out_of_bounds
                   { size = o.size; offset = Bv.to_string off; width })
            else if span > ite_cap then Error Too_wide_ite
            else begin
              let acc = ref (read_concrete o span width) in
              for s = span - 1 downto 0 do
                acc :=
                  Bv.ite
                    (Bv.cmp Bv.Eq off (Bv.const 64 (Int64.of_int s)))
                    (read_concrete o s width)
                    !acc
              done;
              Ok !acc
            end
      end

(** Write [width] bytes of [v] at [off]. *)
let write (m : t) ~obj ~(off : Bv.t) ~width ~(v : Bv.t) :
    (t, access_error) result =
  match IMap.find_opt obj m.objs with
  | None -> Error Dead_object
  | Some o ->
      if not o.live then Error Dead_object
      else if not o.writable then Error Read_only
      else begin
        match off.Bv.node with
        | Bv.Const c ->
            let c = Int64.to_int c in
            if c < 0 || c + width > o.size then
              Error
                (Out_of_bounds
                   { size = o.size; offset = string_of_int c; width })
            else
              Ok { m with objs = IMap.add obj (write_concrete o c width v) m.objs }
        | _ ->
            let span = o.size - width in
            if span < 0 then
              Error
                (Out_of_bounds
                   { size = o.size; offset = Bv.to_string off; width })
            else if span > ite_cap then Error Too_wide_ite
            else begin
              let cells = Array.copy o.cells in
              (* cell i gets byte (i - s) of v when off = s, for any valid s *)
              for i = 0 to o.size - 1 do
                let acc = ref cells.(i) in
                for j = width - 1 downto 0 do
                  let s = i - j in
                  if s >= 0 && s <= span then
                    acc :=
                      Bv.ite
                        (Bv.cmp Bv.Eq off (Bv.const 64 (Int64.of_int s)))
                        (Bv.extract ~hi:((8 * j) + 7) ~lo:(8 * j) v)
                        !acc
                done;
                cells.(i) <- !acc
              done;
              Ok { m with objs = IMap.add obj { o with cells } m.objs }
            end
      end

let string_of_error = function
  | Out_of_bounds { size; offset; width } ->
      Printf.sprintf "out-of-bounds access (%d bytes at %s of %d-byte object)"
        width offset size
  | Dead_object -> "use of dead object"
  | Read_only -> "write to read-only memory"
  | Too_wide_ite -> "symbolic offset over too-large object"

(* checkpoint support: rebuild every cell term through a [Bv.rebuilder] *)
let map_terms f (m : t) =
  { m with objs = IMap.map (fun o -> { o with cells = Array.map f o.cells }) m.objs }
