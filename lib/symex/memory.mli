(** Symbolic byte-granular memory with copy-on-write objects.

    Reads and writes at concrete offsets touch the exact cells; symbolic
    offsets build ITE chains over every in-bounds position (KLEE's array
    selects, materialized eagerly).  States share objects structurally;
    every write replaces the object's cell array. *)

module Bv = Overify_solver.Bv

type obj = {
  size : int;
  cells : Bv.t array;  (** one 8-bit term per byte *)
  writable : bool;
  live : bool;
}

type t

type access_error =
  | Out_of_bounds of { size : int; offset : string; width : int }
  | Dead_object
  | Read_only
  | Too_wide_ite  (** symbolic offset over an object above the ITE cap *)

val empty : t
val alloc : ?writable:bool -> t -> size:int -> t * int
val alloc_bytes : ?writable:bool -> t -> string -> size:int -> t * int
val alloc_symbolic : t -> vars:int array -> t * int
val find : t -> int -> obj option
val kill : t -> int -> t
(** Mark an object dead (scope exit); later access reports [Dead_object]. *)

val read : t -> obj:int -> off:Bv.t -> width:int -> (Bv.t, access_error) result
(** Little-endian assembly of [width] bytes.  For symbolic offsets the
    caller must already have constrained the offset in bounds. *)

val write :
  t -> obj:int -> off:Bv.t -> width:int -> v:Bv.t -> (t, access_error) result

val string_of_error : access_error -> string

val map_terms : (Bv.t -> Bv.t) -> t -> t
(** Rewrite every cell term (checkpoint restore re-interns unmarshaled
    terms into the live hash-cons table). *)
