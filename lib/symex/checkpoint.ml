module Ir = Overify_ir.Ir
module Bv = Overify_solver.Bv
module Binfile = Overify_solver.Binfile
module IMap = State.IMap

type snapshot = {
  ck_paths : int;
  ck_exits : (string * int64) list;
  ck_bugs : ((string * string) * string) list;
  ck_covered : (string * int) list;
  ck_insts : int;
  ck_forks : int;
  ck_degs : (string * string * int) list;
  ck_frontier : State.t list;
}

(* the digest travels inside the payload, next to the snapshot *)
type file_body = { fb_digest : string; fb_snapshot : snapshot }

let magic = "OVERIFY-CHECKPOINT"
let version = 1
let file ~dir = Filename.concat dir "checkpoint.bin"

let fingerprint m ~input_size ~check_bounds =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s|n=%d|bounds=%b"
          (Overify_ir.Printer.modul_to_string m)
          input_size check_bounds))

let save ~dir ~digest (s : snapshot) =
  try
    let payload =
      Marshal.to_string { fb_digest = digest; fb_snapshot = s } []
    in
    Binfile.write ~path:(file ~dir) ~magic ~version payload
  with _ -> false

(* ---- re-interning: rebuild every Bv term of an unmarshaled state ---- *)

let rehash_sval f = function
  | Sval.SInt t -> Sval.SInt (f t)
  | Sval.SPtr (o, off) -> Sval.SPtr (o, f off)

let rehash_state f (st : State.t) =
  {
    st with
    State.frames =
      List.map
        (fun (fr : State.frame) ->
          { fr with State.regs = IMap.map (rehash_sval f) fr.State.regs })
        st.State.frames;
    mem = Memory.map_terms f st.State.mem;
    path = List.map f st.State.path;
    out_rev = List.map f st.State.out_rev;
  }

let load ~dir ~digest =
  match Binfile.read ~path:(file ~dir) ~magic ~version with
  | None -> None
  | Some payload -> (
      match
        try Some (Marshal.from_string payload 0 : file_body) with _ -> None
      with
      | Some fb when fb.fb_digest = digest ->
          let f = Bv.rebuilder () in
          let s = fb.fb_snapshot in
          Some { s with ck_frontier = List.map (rehash_state f) s.ck_frontier }
      | Some _ | None -> None)

let delete ~dir = try Sys.remove (file ~dir) with _ -> ()
