(** Top-level symbolic-execution engine: explores all paths of a module's
    [main] for a given symbolic input size, under time/path budgets, and
    reports the statistics the paper's evaluation uses. *)

type config = {
  input_size : int;      (** number of symbolic input bytes *)
  max_paths : int;       (** stop after completing this many paths *)
  max_insts : int;       (** total dynamic instruction budget *)
  timeout : float;       (** wall-clock seconds (also bounds solver work) *)
  check_bounds : bool;   (** fork out-of-bounds bug paths *)
  searcher : [ `Dfs | `Bfs | `Parallel of int ];
      (** [`Parallel n] explores on [n] OCaml domains with a work-sharing
          scheduler; each worker owns a private solver context and budgets
          are enforced globally.  [`Parallel 1] is the work-sharing
          scheduler on a single domain. *)
  profile : bool;
      (** attribute cost (instructions, forks, solver queries and time,
          path completions) to (function, block) sites; the merged
          attribution is returned in [result.profile].  Off by default —
          the un-instrumented run pays only a per-site [option] branch. *)
  summaries : bool;
      (** compositional mode ([verify --summaries] /
          [OVERIFY_SUMMARIES=1]): before exploring, build per-function
          symbolic summaries bottom-up over the call graph — or load them
          from the persistent store, keyed by a structural fingerprint
          that hashes each function's body plus its callees'
          fingerprints, so editing one function re-verifies only its
          callgraph cone — and instantiate them at call sites instead of
          inlining.  Verdicts ([paths], [bugs], [exit_codes],
          [blocks_covered]) are identical to inline exploration (the
          summary-vs-inline differential battery in test_summary checks
          this byte-for-byte); only effort counters move.  Functions the
          summarizer cannot capture faithfully (recursion, symbolic
          memory offsets, budget blow-ups) stay [Opaque] and are explored
          inline.  Defaults to the [OVERIFY_SUMMARIES] environment
          variable. *)
  solver_cache : bool option;
      (** enable the solver's reuse layers (exact, canonical,
          counterexample, store); [None] defers to [OVERIFY_SOLVER_CACHE]
          (default on).  The determinism contract makes answers identical
          either way — only hit counters and solve counts move. *)
  cache_dir : string option;
      (** directory of a persistent cross-run solver store; loaded before
          exploration, shared by every worker, saved (atomically) after —
          repeated runs, other levels and [bench] sweeps reuse each
          other's canonical verdicts *)
  store : Overify_solver.Store.t option;
      (** an already-open store to reuse instead of loading from
          [cache_dir] (which is then ignored); the caller owns its
          lifecycle — the engine reads/adds but never saves it.  This is
          how the [overify serve] daemon keeps one warm store across
          requests. *)
  faults : Overify_fault.Fault.t option;
      (** injected-fault schedule (see {!Overify_fault.Fault}): solver
          timeouts, store write corruption, allocation exhaustion, worker
          crashes and kills fire deterministically at scheduled visit
          counts.  [None] (the default) injects nothing and costs one
          branch per site. *)
  checkpoint_dir : string option;
      (** write periodic atomic frontier snapshots to this directory
          (sequential searchers only; [`Parallel n] never snapshots but
          can still [resume]), enabling kill/resume *)
  checkpoint_every : int;
      (** snapshot cadence in completed paths (default 64); the snapshot
          is cut at a quiescent loop point, so it partitions the path
          tree exactly *)
  resume : bool;
      (** seed the run from [checkpoint_dir]'s snapshot if one exists and
          its fingerprint (program, input size, bounds flag) matches;
          otherwise start fresh.  A resumed-then-completed run reports
          the same [paths]/[bugs]/[exit_codes]/[blocks_covered] as an
          uninterrupted one. *)
  span : Overify_obs.Obs.Span.t option;
      (** parent span for end-to-end request tracing (the [overify serve]
          daemon opens one per admitted request): the run nests an
          ["engine.run"] child with ["summary.build"], per-worker
          ["symex.worker<i>"] and per-query ["solver.check"] descendants
          in the flight ring / trace sink.  The counters attached to the
          worker spans are the same per-worker sums that define the
          [result] totals, so per-span sums equal engine totals exactly
          as the profile's per-site sums do.  [None] (the default) traces
          nothing and costs one [option] branch per site. *)
  cancel : Overify_fault.Cancel.t option;
      (** cooperative cancellation token (the [overify serve] daemon
          threads each request's admission-deadline token here): checked
          at worklist pops, at the periodic budget points, around the
          summary build and — via the per-worker solver contexts —
          before every solver query.  A set or past-deadline token stops
          exploration promptly; the run still returns, with every
          verdict proved so far plus a ["deadline_exceeded"] degradation
          carrying the cancellation reason.  Store/summary caches stay
          consistent (entries are individually complete), so a
          cancelled-then-retried run is byte-identical to an uncancelled
          one under [result_to_json ~deterministic].  [None] (the
          default) cancels nothing. *)
}

val default_config : config

type bug = {
  kind : string;         (** e.g. "division by zero" *)
  input : string;        (** concrete input reproducing the bug *)
  at_function : string;
}

type degradation = {
  d_kind : string;
      (** what gave way: [path_budget] / [inst_budget] / [wall_clock]
          (budgets), [solver_timeout] (one query gave up, its path is
          unknown), [worker_crash] (contained exception, real or
          injected), [executor_error] (unsupported construct),
          [alloc_exhausted] (allocation budget, injected),
          [path_dropped] (executor abandoned a path, e.g. symbolic
          pointer beyond the ITE cap), [deadline_exceeded] (cooperative
          cancellation via [config.cancel]; [d_where] is the
          cancellation reason) *)
  d_where : string;  (** site/reason detail; may be empty for budgets *)
  d_paths : int;
      (** paths affected; for budget kinds a lower bound (the frontier
          length when the budget tripped) *)
}

type worker_stat = {
  w_instructions : int;
  w_forks : int;
  w_queries : int;
  w_cache_hits : int;
  w_solver_time : float;
  w_components : int;
  w_component_solves : int;
  w_hits_exact : int;       (** per-layer solver cache hits (see
                                [Solver.stats]); the result's layer
                                totals are their sums *)
  w_hits_canon : int;
  w_hits_subset : int;
  w_hits_superset : int;
  w_hits_store : int;
}

type result = {
  paths : int;           (** completed (exited) paths *)
  bugs : bug list;
      (** deduplicated by (kind, function), smallest witness kept, sorted *)
  instructions : int;    (** dynamic instructions over all paths *)
  forks : int;
  queries : int;         (** solver queries issued *)
  cache_hits : int;      (** queries answered without any blasting *)
  solver_time : float;   (** seconds in blasting + SAT *)
  components : int;      (** independent subproblems across all queries *)
  component_solves : int;
      (** raw blast+SAT invocations — what the acceleration chain saves *)
  hits_exact : int;      (** solver cache hits per layer: exact-match, *)
  hits_canon : int;      (** canonical component cache, *)
  hits_subset : int;     (** UNSAT-subset rule, *)
  hits_superset : int;   (** stored-model screening, *)
  hits_store : int;      (** and the persistent cross-run store *)
  summary_instantiated : int;
      (** call sites answered by instantiating a function summary *)
  summary_opaque : int;
      (** call sites whose callee summary was [Opaque] (explored inline) *)
  summary_computed : int;  (** summaries built fresh this run *)
  summary_cached : int;    (** summaries loaded from the persistent store *)
  time : float;          (** total verification wall time *)
  complete : bool;
      (** derived: [degradations = []] — exploration covered every path *)
  degradations : degradation list;
      (** the structured reasons a run is incomplete — the graceful-
          degradation ladder.  Grouped by (kind, where) with summed path
          counts and canonically sorted; empty iff [complete]. *)
  faults_injected : (string * int) list;
      (** per-kind injected-fault counts when [config.faults] was set
          (all kinds, zeros included, fixed order); [[]] otherwise *)
  resumed : bool;        (** this run was seeded from a checkpoint *)
  exit_codes : (string * int64) list;
      (** per completed path: a concrete witness input and its exit code,
          sorted canonically *)
  blocks_covered : int;  (** basic blocks reached on some explored path *)
  blocks_total : int;    (** blocks of the functions reachable from main *)
  jobs : int;            (** worker domains used (1 for [`Dfs]/[`Bfs]) *)
  worker_stats : worker_stat list;
      (** per-worker solver/executor counters, in worker order; the
          reported totals ([instructions], [forks], [queries],
          [cache_hits], [solver_time]) are their sums *)
  profile : Overify_obs.Obs.Profile.t option;
      (** per-(function, block) cost attribution, merged over workers;
          present iff [config.profile].  Attributed instructions, forks,
          queries and cache hits sum exactly to the whole-run totals;
          attributed solver time sums to [solver_time] up to float
          rounding. *)
}

val run : ?config:config -> Overify_ir.Ir.modul -> result
(** Symbolically execute [main].  Fresh solver state per run.

    Determinism contract: for a run with [complete = true], the values of
    [paths], [bugs], [exit_codes] and [blocks_covered] do not depend on the
    searcher or the number of workers — [`Dfs], [`Bfs] and [`Parallel n]
    agree exactly.  (Counters such as [queries] and [cache_hits] do vary,
    since each worker caches independently.)

    Failure containment: per-path exceptions (including injected
    {!Overify_fault.Fault.Crash}) and per-query solver timeouts degrade
    only the affected paths and are reported in [degradations]; the
    completed subset keeps the determinism contract (an abandoned path
    never changes another path's verdict).  The only exceptions that
    escape are {!Overify_fault.Fault.Killed} (simulated process death —
    resume from the checkpoint), [Out_of_memory], [Stack_overflow] and
    setup errors ([Invalid_argument] for a module without [main]). *)

val result_to_json : ?deterministic:bool -> result -> string
(** Machine-readable result (fixed key order, goldenable), including the
    [degradations] and [faults_injected] blocks.  [deterministic] zeroes
    everything that is not a verdict: the wall-clock fields, [cache_hits]
    (reuse-state-dependent: a warm store changes hit counts but, by the
    determinism contract, nothing else) and the effort/summary counters
    ([instructions], [forks], [queries], [summary_*]), which legitimately
    differ between compositional and inline exploration.  Identical
    programs therefore produce identical bytes regardless of cache
    temperature or summary mode. *)
