(** The summary builder: exhaustive per-function symbolic exploration.

    [build] walks the summarizable functions bottom-up (callees first) and
    computes, for each, the complete set of execution traces under
    unconstrained symbolic parameters and fully symbolic writable-global
    contents — a {e build world} whose memory is allocated from
    [Memory.empty] in module order, so global object ids coincide with the
    main run's and the summaries transfer unchanged.

    The builder reuses {!Executor.step} verbatim with [gctx.building] set:
    calls inline (nested branch conjuncts must flow through the real Cbr
    discipline to be flavored), branch conjuncts are recorded in
    [gctx.fork_conds], and a per-trace coverage table is swapped through
    the (mutable) [gctx.covered] so each trace knows exactly the blocks it
    touches.  Path conjuncts are recovered per step by diffing the child's
    path against the parent's (paths share their tail physically).

    Anything that would make replay unfaithful or unbounded demotes the
    function to [Opaque]: dropped paths, symbolic memory offsets (their
    bug message is context-dependent), trace-count or instruction budgets,
    solver timeouts, contained crashes.  Structural reasons are published
    to the store; transient ones (timeouts, injected faults) are not, so a
    later run may retry. *)

module Ir = Overify_ir.Ir
module Bv = Overify_solver.Bv
module Solver = Overify_solver.Solver
module Store = Overify_solver.Store
module Fault = Overify_fault.Fault
module Summary = Overify_summary.Summary

let max_traces = 64
let max_insts = 50_000

exception Give_up of string

(** Reasons that are a property of the program (not of this run's luck)
    and may therefore be persisted alongside real summaries. *)
let publishable = function
  | Summary.Summarized _ -> true
  | Summary.Opaque
      ("too many traces" | "instruction budget" | "symbolic memory offset")
    ->
      true
  | Summary.Opaque _ -> false

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(** A transient [Opaque] caused by a runtime event — a solver timeout, a
    contained crash, a dropped path — classified for the engine's
    degradation ladder ("nothing degrades silently": a fault that fires
    during summary construction must be as visible as one that fires
    during exploration).  Structural reasons return [None]: demoting a
    recursive or too-branchy function to inline exploration is the design
    working, not a degradation. *)
let transient_degradation fn = function
  | Summary.Summarized _ -> None
  | Summary.Opaque reason ->
      let where = Printf.sprintf "summary build %s: %s" fn reason in
      if reason = "solver timeout" then Some ("solver_timeout", where)
      else if has_prefix "crash: " reason then Some ("worker_crash", where)
      else if has_prefix "dropped path: allocation" reason then
        Some ("alloc_exhausted", where)
      else if has_prefix "dropped path" reason then Some ("path_dropped", where)
      else if has_prefix "executor: " reason then Some ("executor_error", where)
      else None

(** The build world's initial memory: same allocation order (hence the
    same object ids) as {!Engine.run}, but writable globals start fully
    symbolic — one 8-bit cell variable per byte, ids from the layout. *)
let build_memory (m : Ir.modul) (glayout : Summary.layout) : Memory.t =
  let mem = ref Memory.empty in
  List.iter
    (fun (g : Ir.global) ->
      if g.Ir.gconst then begin
        let m', _ =
          Memory.alloc_bytes ~writable:false !mem g.Ir.ginit ~size:g.Ir.gsize
        in
        mem := m'
      end
      else begin
        let base =
          match
            List.find_map
              (fun (n, b, _) -> if n = g.Ir.gname then Some b else None)
              glayout
          with
          | Some b -> b
          | None -> assert false (* layout lists every writable global *)
        in
        let vars = Array.init g.Ir.gsize (fun i -> base + i) in
        let m', _ = Memory.alloc_symbolic !mem ~vars in
        mem := m'
      end)
    m.Ir.globals;
  !mem

(** New conjuncts on [child] relative to [parent], in execution order.
    Path lists grow by consing, so the parent's path is a physical suffix
    of the child's. *)
let path_delta ~(parent : Bv.t list) ~(child : Bv.t list) : Bv.t list =
  let rec go acc l = if l == parent then acc else
    match l with
    | [] -> acc (* resumed/foreign state; cannot happen during build *)
    | c :: tl -> go (c :: acc) tl
  in
  go [] child

let build_one (gctx : Executor.gctx) (fn : Ir.func) : Summary.fsum =
  let m = gctx.Executor.modul in
  let entry = Ir.entry fn in
  let mem = build_memory m gctx.Executor.glayout in
  let regs =
    List.fold_left
      (fun (rmap, i) ((r, ty) : int * Ir.ty) ->
        ( State.IMap.add r
            (Sval.SInt (Bv.var (Ir.bits_of_ty ty) (Summary.param_base + i)))
            rmap,
          i + 1 ))
      (State.IMap.empty, 0) fn.Ir.params
    |> fst
  in
  let init =
    {
      State.frames =
        [
          {
            State.fn;
            regs;
            cur_block = entry.Ir.bid;
            prev_block = -1;
            insts = entry.Ir.insts;
            ret_dst = None;
            frame_objs = [];
          };
        ];
      mem;
      path = [];
      model = [];
      out_rev = [];
      steps = 0;
    }
  in
  let insts0 = gctx.Executor.insts_executed in
  let traces = ref [] in
  let ntraces = ref 0 in
  let seed_cov = Hashtbl.create 16 in
  Hashtbl.replace seed_cov (fn.Ir.fname, entry.Ir.bid) ();
  (* DFS node: state, its coverage so far, its conjuncts so far (reversed,
     already flavored) *)
  let stack = ref [ (init, seed_cov, []) ] in
  gctx.Executor.sym_deref <- false;
  let leaf cov rev_conjs outcome writes =
    incr ntraces;
    if !ntraces > max_traces then raise (Give_up "too many traces");
    let covered =
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) cov [])
    in
    traces :=
      {
        Summary.t_conjuncts = List.rev rev_conjs;
        t_outcome = outcome;
        t_writes = writes;
        t_covered = covered;
      }
      :: !traces
  in
  (* final contents of every writable-global byte that changed *)
  let writes_of (st : State.t) : (string * int * Bv.t) list =
    List.concat_map
      (fun (gname, base, size) ->
        match List.assoc_opt gname gctx.Executor.globals with
        | None -> []
        | Some obj -> (
            match Memory.find st.State.mem obj with
            | None -> []
            | Some o ->
                let out = ref [] in
                for i = size - 1 downto 0 do
                  let cell = o.Memory.cells.(i) in
                  if not (cell == Bv.var 8 (base + i)) then
                    out := (gname, i, cell) :: !out
                done;
                !out))
      gctx.Executor.glayout
  in
  try
    while !stack <> [] do
      if gctx.Executor.insts_executed - insts0 > max_insts then
        raise (Give_up "instruction budget");
      let st, cov, conjs =
        match !stack with
        | n :: rest ->
            stack := rest;
            n
        | [] -> assert false
      in
      (* a fresh table collects only this step's coverage marks, so a
         forking step can attribute them to the right child *)
      let delta_tbl = Hashtbl.create 4 in
      gctx.Executor.covered <- delta_tbl;
      gctx.Executor.fork_conds <- [];
      let transitions = Executor.step gctx st in
      let delta = Hashtbl.fold (fun k () acc -> k :: acc) delta_tbl [] in
      let multi = List.length transitions > 1 in
      let fork_conds = gctx.Executor.fork_conds in
      let child_conjs (st' : State.t) =
        List.fold_left
          (fun acc c ->
            { Summary.c_fork = List.memq c fork_conds; c_term = c } :: acc)
          conjs
          (path_delta ~parent:st.State.path ~child:st'.State.path)
      in
      let child_cov (st' : State.t) ~terminal =
        if not multi then begin
          List.iter (fun k -> Hashtbl.replace cov k ()) delta;
          cov
        end
        else begin
          (* the only forking step that marks coverage is a two-sided Cbr,
             whose marks are exactly the children's entry positions; any
             other attribution pattern is a case this builder does not
             understand — give up rather than summarize wrongly *)
          let c = Hashtbl.copy cov in
          let mine =
            if terminal then []
            else begin
              let fr = State.top st' in
              let k = (fr.State.fn.Ir.fname, fr.State.cur_block) in
              if List.mem k delta then [ k ] else []
            end
          in
          if
            List.exists
              (fun k ->
                not
                  (List.exists
                     (fun (st'' : State.t) ->
                       match st''.State.frames with
                       | fr :: _ ->
                           (fr.State.fn.Ir.fname, fr.State.cur_block) = k
                       | [] -> false)
                     (List.filter_map
                        (function
                          | Executor.T_cont s | Executor.T_exit (s, _) ->
                              Some s
                          | _ -> None)
                        transitions)))
              delta
          then raise (Give_up "coverage attribution");
          List.iter (fun k -> Hashtbl.replace c k ()) mine;
          c
        end
      in
      List.iter
        (fun tr ->
          match tr with
          | Executor.T_cont st' ->
              stack := (st', child_cov st' ~terminal:false, child_conjs st')
                       :: !stack
          | Executor.T_exit (st', code) ->
              (* the summarized function returning: single-frame states
                 exit instead of popping *)
              let cov' = child_cov st' ~terminal:true in
              leaf cov' (child_conjs st') (Summary.O_ret code) (writes_of st')
          | Executor.T_bug (st', kind) ->
              let cov' = child_cov st' ~terminal:true in
              let fr = State.top st' in
              leaf cov' (child_conjs st')
                (Summary.O_bug
                   {
                     bg_kind = kind;
                     bg_fn = fr.State.fn.Ir.fname;
                     bg_block = fr.State.cur_block;
                   })
                []
          | Executor.T_drop (_, reason) ->
              raise (Give_up ("dropped path: " ^ reason)))
        transitions
    done;
    if gctx.Executor.sym_deref then Summary.Opaque "symbolic memory offset"
    else Summary.Summarized (List.rev !traces)
  with
  | Give_up reason -> Summary.Opaque reason
  | Solver.Timeout -> Summary.Opaque "solver timeout"
  | Executor.Symex_error msg -> Summary.Opaque ("executor: " ^ msg)
  | Fault.Crash msg -> Summary.Opaque ("crash: " ^ msg)

(** Compute (or load from [store]) summaries for every candidate of [m],
    bottom-up, using [gctx]'s solver and counters — the build's
    instructions, forks and queries are charged like any other execution,
    so profile attribution still sums to the run totals.  Returns the
    summary table (also installed into [gctx.summaries]), how many
    summaries were computed fresh and how many came from the store, plus
    the (kind, where) degradation events for fault-induced transient
    opacities (see {!transient_degradation}). *)
let build ~(gctx : Executor.gctx) ~(store : Store.t option) (m : Ir.modul) :
    (string, Summary.fsum) Hashtbl.t * int * int * (string * string) list =
  let tbl = Hashtbl.create 16 in
  gctx.Executor.summaries <- Some tbl;
  let fps = Summary.fingerprints m in
  let computed = ref 0 and cached = ref 0 in
  let degs = ref [] in
  let saved_covered = gctx.Executor.covered in
  Fun.protect
    ~finally:(fun () ->
      gctx.Executor.covered <- saved_covered;
      gctx.Executor.building <- false;
      gctx.Executor.fork_conds <- [];
      gctx.Executor.sym_deref <- false)
    (fun () ->
      gctx.Executor.building <- true;
      List.iter
        (fun name ->
          let key =
            Summary.store_key ~check_bounds:gctx.Executor.check_bounds
              (Hashtbl.find fps name)
          in
          let from_store =
            match store with
            | None -> None
            | Some s -> (
                match Store.find s key with
                | Some (Store.E_blob b) -> Summary.decode b
                | _ -> None)
          in
          match from_store with
          | Some sum ->
              incr cached;
              Hashtbl.replace tbl name sum
          | None ->
              let sum = build_one gctx (Ir.find_func_exn m name) in
              incr computed;
              Hashtbl.replace tbl name sum;
              (match transient_degradation name sum with
              | Some d -> degs := d :: !degs
              | None -> ());
              (match store with
              | Some s when publishable sum ->
                  Store.add s key (Store.E_blob (Summary.encode sum))
              | _ -> ()))
        (Summary.candidates m));
  (tbl, !computed, !cached, List.rev !degs)
