(** The symbolic-execution step function: KLEE-style per-path interpretation
    of the IR, forking at feasible branches.

    Feasibility uses a counterexample-model fast path: every state carries a
    concrete assignment satisfying its path condition; the branch side that
    assignment takes is feasible for free, so typically {e one} solver query
    is spent per symbolic branch. *)

module Ir = Overify_ir.Ir
module Bv = Overify_solver.Bv
module Solver = Overify_solver.Solver
module Obs = Overify_obs.Obs
module Fault = Overify_fault.Fault
module Summary = Overify_summary.Summary
module IMap = State.IMap

type gctx = {
  modul : Ir.modul;
  block_tbls : (string, (int, Ir.block) Hashtbl.t) Hashtbl.t;
  globals : (string * int) list;   (** global name -> memory object *)
  input_vars : int array;          (** symbolic variable id per input byte *)
  check_bounds : bool;             (** hunt for memory-safety bugs *)
  solver : Solver.ctx;             (** this worker's private solver context *)
  faults : Fault.t option;
      (** injected-fault schedule shared by all workers of a run; scheduled
          crash/kill faults tick per [step], alloc faults per [Alloca] *)
  mutable insts_executed : int;    (** dynamic total over all paths *)
  mutable forks : int;
  mutable covered : (string * int, unit) Hashtbl.t;
      (** basic blocks reached on some path (KLEE-style coverage);
          mutable so the summary builder can swap in per-trace tables *)
  prof : Obs.Profile.t option;
      (** cost attribution per (function, block); [None] (the default) is
          the un-instrumented fast path — every profiling site is one
          branch on this option.  Increments mirror [insts_executed],
          [forks] and the solver counters exactly, so attributed values
          sum to the whole-run totals. *)
  glayout : Summary.layout;
      (** writable-global byte-cell layout (summary variable space) *)
  mutable summaries : (string, Summary.fsum) Hashtbl.t option;
      (** per-function summaries; [Some] iff the run has summaries on *)
  mutable building : bool;
      (** inside the summary builder: calls always inline, and branch
          conjuncts are recorded in [fork_conds] for flavoring *)
  mutable sym_deref : bool;
      (** a bounds check saw a symbolic offset — its bug message depends
          on the calling context, so the function under build is opaque *)
  mutable fork_conds : Bv.t list;
      (** while building: conjuncts added under the both-sides-feasible
          branch discipline (Cbr), as opposed to the always-constrain
          condition discipline; cleared by the builder before each step *)
  mutable sum_hits : int;    (** call sites answered by a summary *)
  mutable sum_opaque : int;  (** call sites whose summary was opaque *)
  mutable span : Obs.Span.t option;
      (** this worker's span (request tracing): summary instantiations
          emit instant events under it, and the engine parents per-query
          solver spans on it.  [None] (the default) emits nothing. *)
}

(** The attribution cell for [st]'s current (function, block). *)
let prof_site (p : Obs.Profile.t) (st : State.t) =
  let fr = State.top st in
  Obs.Profile.site p ~fn:fr.State.fn.Ir.fname ~block:fr.State.cur_block

type transition =
  | T_cont of State.t
  | T_exit of State.t * Bv.t option   (** normal return from main *)
  | T_bug of State.t * string
  | T_drop of State.t * string
      (** path abandoned for an engine limitation (e.g. a symbolic offset
          over a very large object); makes the exploration incomplete *)

exception Symex_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Symex_error s)) fmt

let block_tbl gctx (fn : Ir.func) =
  match Hashtbl.find_opt gctx.block_tbls fn.Ir.fname with
  | Some t -> t
  | None ->
      let t = Ir.block_tbl fn in
      Hashtbl.replace gctx.block_tbls fn.Ir.fname t;
      t

let width_of_ty ty = Ir.bits_of_ty ty

(* ---------------- feasibility ---------------- *)

type feas = Feasible of (int * int64) list | Infeasible

(** One solver query, with its counter deltas (queries, cache hits, solver
    time) attributed to [st]'s current site.  The delta view keeps the
    attribution defined as "whatever the solver context recorded", so
    per-site sums cannot drift from the whole-run totals; [Fun.protect]
    charges partially-spent time even when the solver raises [Timeout]. *)
let checked_query gctx (st : State.t) (assertions : Bv.t list) : Solver.result =
  match gctx.prof with
  | None -> Solver.check gctx.solver assertions
  | Some p ->
      let s = Solver.stats gctx.solver in
      let q0 = s.Solver.queries
      and h0 = s.Solver.cache_hits
      and t0 = s.Solver.solver_time in
      Fun.protect
        ~finally:(fun () ->
          let cell = prof_site p st in
          cell.Obs.Profile.s_queries <-
            cell.Obs.Profile.s_queries + (s.Solver.queries - q0);
          cell.Obs.Profile.s_cache_hits <-
            cell.Obs.Profile.s_cache_hits + (s.Solver.cache_hits - h0);
          cell.Obs.Profile.s_solver_time <-
            cell.Obs.Profile.s_solver_time +. (s.Solver.solver_time -. t0))
        (fun () -> Solver.check gctx.solver assertions)

(** Is [path /\ c] satisfiable?  Fast path: the state's model. *)
let feasible gctx (st : State.t) (c : Bv.t) : feas =
  match c.Bv.node with
  | Bv.Const 1L -> Feasible st.State.model
  | Bv.Const 0L -> Infeasible
  | _ ->
      if State.model_eval st c then Feasible st.State.model
      else begin
        match checked_query gctx st (c :: st.State.path) with
        | Solver.Sat m -> Feasible m
        | Solver.Unsat -> Infeasible
      end

let constrain (st : State.t) c model =
  { st with State.path = c :: st.State.path; model }

(* ---------------- value evaluation ---------------- *)

let eval_value gctx (st : State.t) (v : Ir.value) : Sval.t =
  match v with
  | Ir.Imm (x, Ir.Ptr) ->
      if x = 0L then Sval.null else err "non-null pointer constant"
  | Ir.Imm (x, ty) -> Sval.SInt (Bv.const (width_of_ty ty) x)
  | Ir.Reg r -> State.get_reg st r
  | Ir.Glob g -> (
      match List.assoc_opt g gctx.globals with
      | Some obj -> Sval.SPtr (obj, Bv.const 64 0L)
      | None -> err "unknown global %s" g)

let as_int_exn what v =
  match Sval.as_int v with
  | Some t -> t
  | None -> err "%s: pointer where integer expected" what

let as_ptr_exn what v =
  match Sval.as_ptr v with
  | Some p -> p
  | None -> err "%s: integer where pointer expected" what

let bv_binop (op : Ir.binop) : Bv.binop =
  match op with
  | Ir.Add -> Bv.Add | Ir.Sub -> Bv.Sub | Ir.Mul -> Bv.Mul
  | Ir.Sdiv -> Bv.Sdiv | Ir.Udiv -> Bv.Udiv
  | Ir.Srem -> Bv.Srem | Ir.Urem -> Bv.Urem
  | Ir.And -> Bv.And | Ir.Or -> Bv.Or | Ir.Xor -> Bv.Xor
  | Ir.Shl -> Bv.Shl | Ir.Lshr -> Bv.Lshr | Ir.Ashr -> Bv.Ashr

let bv_cmp (op : Ir.cmp) : Bv.cmpop =
  match op with
  | Ir.Eq -> Bv.Eq | Ir.Ne -> Bv.Ne
  | Ir.Slt -> Bv.Slt | Ir.Sle -> Bv.Sle | Ir.Sgt -> Bv.Sgt | Ir.Sge -> Bv.Sge
  | Ir.Ult -> Bv.Ult | Ir.Ule -> Bv.Ule | Ir.Ugt -> Bv.Ugt | Ir.Uge -> Bv.Uge

(* pointers stored in memory: (obj << 32) | (offset + 1); null = 0 *)
let encode_ptr obj (off : Bv.t) : Bv.t =
  match off.Bv.node with
  | Bv.Const c ->
      if obj = 0 && c = 0L then Bv.const 64 0L
      else
        Bv.const 64
          (Int64.logor (Int64.shift_left (Int64.of_int obj) 32) (Int64.add c 1L))
  | _ -> err "storing a pointer with symbolic offset"

let decode_raw raw : Sval.t =
  if raw = 0L then Sval.null
  else
    Sval.SPtr
      ( Int64.to_int (Int64.shift_right_logical raw 32),
        Bv.const 64 (Int64.sub (Int64.logand raw 0xFFFFFFFFL) 1L) )

let decode_ptr (t : Bv.t) : Sval.t =
  match t.Bv.node with
  | Bv.Const raw -> decode_raw raw
  | _ -> err "loading a symbolic pointer"

(** A pointer loaded through a symbolic index is an ITE tree over constant
    raw encodings; enumerate the alternatives with their guards so the
    caller can fork (KLEE's pointer resolution). *)
let decode_ptr_alternatives (t : Bv.t) : (Bv.t * int64) list option =
  let alts = ref [] in
  let ok = ref true in
  let rec go (t : Bv.t) guard =
    if !ok && List.length !alts <= 64 then
      match t.Bv.node with
      | Bv.Const raw -> alts := (guard, raw) :: !alts
      | Bv.Ite (c, a, b) ->
          go a (Bv.and_ guard c);
          go b (Bv.and_ guard (Bv.not_ c))
      | _ -> ok := false
  in
  go t Bv.tt;
  if !ok && List.length !alts <= 64 then Some !alts else None

(* ---------------- block transfer ---------------- *)

(** Enter [target]; evaluates phis in parallel. *)
let enter_block gctx (st : State.t) target : State.t =
  let fr = State.top st in
  Hashtbl.replace gctx.covered (fr.State.fn.Ir.fname, target) ();
  let tbl = block_tbl gctx fr.State.fn in
  let blk =
    match Hashtbl.find_opt tbl target with
    | Some b -> b
    | None -> err "branch to missing block L%d" target
  in
  let prev = fr.State.cur_block in
  let phis, rest =
    let rec split acc = function
      | (Ir.Phi _ as p) :: tl -> split (p :: acc) tl
      | tl -> (List.rev acc, tl)
    in
    split [] blk.Ir.insts
  in
  let phi_vals =
    List.map
      (fun p ->
        match p with
        | Ir.Phi (d, _, incoming) -> (
            match List.assoc_opt prev incoming with
            | Some v -> (d, eval_value gctx st v)
            | None -> err "phi without entry for predecessor L%d" prev)
        | _ -> assert false)
      phis
  in
  gctx.insts_executed <- gctx.insts_executed + List.length phis;
  (match gctx.prof with
  | Some p when phis <> [] ->
      (* phi evaluation belongs to the block being entered *)
      let cell =
        Obs.Profile.site p ~fn:fr.State.fn.Ir.fname ~block:target
      in
      cell.Obs.Profile.s_insts <-
        cell.Obs.Profile.s_insts + List.length phis
  | _ -> ());
  let st = { st with State.steps = st.State.steps + List.length phis } in
  State.with_top
    (List.fold_left
       (fun st (d, v) -> State.set_reg st d v)
       st phi_vals)
    (fun fr ->
      { fr with State.cur_block = target; prev_block = prev; insts = rest })

(* ---------------- memory access with bug forking ---------------- *)

(** Produce transitions for an access at [SPtr (obj, off)] of [width] bytes:
    a possible out-of-bounds bug branch plus the in-bounds continuation
    (through [k]). *)
let with_bounds gctx (st : State.t) ~what ~obj ~(off : Bv.t) ~width
    (k : State.t -> transition list) : transition list =
  if obj = 0 then [ T_bug (st, "null pointer dereference") ]
  else
    match Memory.find st.State.mem obj with
    | None -> [ T_bug (st, "dangling object") ]
    | Some o ->
        if not o.Memory.live then [ T_bug (st, what ^ ": use after scope exit") ]
        else begin
          match off.Bv.node with
          | Bv.Const c ->
              let c64 = Int64.to_int c in
              if c64 < 0 || c64 + width > o.Memory.size then
                [ T_bug
                    ( st,
                      Printf.sprintf
                        "%s: out-of-bounds (%d bytes at %d of %d-byte object)"
                        what width c64 o.Memory.size ) ]
              else k st
          | _ ->
              (* the bug message below depends on whether the offset is
                 symbolic, which substitution can change — a function whose
                 build hits this arm cannot be summarized faithfully *)
              gctx.sym_deref <- true;
              let limit = Int64.of_int (o.Memory.size - width) in
              if limit < 0L then
                [ T_bug (st, what ^ ": access wider than object") ]
              else begin
                let in_b = Bv.cmp Bv.Ule off (Bv.const 64 limit) in
                let oob = Bv.not_ in_b in
                let bugs =
                  if gctx.check_bounds then
                    match feasible gctx st oob with
                    | Feasible m ->
                        [ T_bug
                            ( constrain st oob m,
                              what ^ ": out-of-bounds (symbolic offset)" ) ]
                    | Infeasible -> []
                  else []
                in
                let conts =
                  match feasible gctx st in_b with
                  | Feasible m -> k (constrain st in_b m)
                  | Infeasible -> []
                in
                bugs @ conts
              end
        end

(* ---------------- intrinsic calls ---------------- *)

let input_byte gctx (st : State.t) (idx : Bv.t) : Bv.t =
  let n = Array.length gctx.input_vars in
  match idx.Bv.node with
  | Bv.Const c ->
      let i = Int64.to_int (Bv.to_signed 32 c) in
      if i >= 0 && i < n then Bv.zext 32 (Bv.var 8 gctx.input_vars.(i))
      else Bv.const 32 0L
  | _ ->
      let acc = ref (Bv.const 32 0L) in
      for i = n - 1 downto 0 do
        acc :=
          Bv.ite
            (Bv.cmp Bv.Eq idx (Bv.const 32 (Int64.of_int i)))
            (Bv.zext 32 (Bv.var 8 gctx.input_vars.(i)))
            !acc
      done;
      ignore st;
      !acc

(* ---------------- the step function ---------------- *)

let charge gctx st =
  gctx.insts_executed <- gctx.insts_executed + 1;
  (match gctx.prof with
  | Some p ->
      let cell = prof_site p st in
      cell.Obs.Profile.s_insts <- cell.Obs.Profile.s_insts + 1
  | None -> ());
  { st with State.steps = st.State.steps + 1 }

(** A genuine fork (more than one feasible continuation), attributed to the
    site that forked. *)
let record_fork gctx st =
  gctx.forks <- gctx.forks + 1;
  match gctx.prof with
  | Some p ->
      let cell = prof_site p st in
      cell.Obs.Profile.s_forks <- cell.Obs.Profile.s_forks + 1
  | None -> ()

(** Execute one instruction or terminator of [st]. *)
(* Injected per-step faults.  [Worker_crash] raises a containable
   exception (the engine degrades just this path); [Kill] simulates the
   whole process dying — deliberately not contained anywhere, so only a
   checkpoint survives it. *)
let fault_tick gctx =
  match gctx.faults with
  | None -> ()
  | Some _ ->
      if Fault.fire gctx.faults Fault.Worker_crash then
        raise (Fault.Crash "injected worker-domain exception");
      if Fault.fire gctx.faults Fault.Kill then raise (Fault.Killed "injected kill")

let rec step gctx (st : State.t) : transition list =
  fault_tick gctx;
  let fr = State.top st in
  match fr.State.insts with
  | inst :: rest -> (
      let st = charge gctx st in
      let st = State.with_top st (fun fr -> { fr with State.insts = rest }) in
      let ev v = eval_value gctx st v in
      match inst with
      | Ir.Bin (d, op, ty, a, b) -> (
          let w = width_of_ty ty in
          let ta = as_int_exn "binop" (ev a) and tb = as_int_exn "binop" (ev b) in
          assert (ta.Bv.width = w && tb.Bv.width = w);
          match op with
          | Ir.Sdiv | Ir.Udiv | Ir.Srem | Ir.Urem -> (
              let zero = Bv.const w 0L in
              let is_zero = Bv.cmp Bv.Eq tb zero in
              match is_zero.Bv.node with
              | Bv.Const 0L ->
                  [ T_cont (State.set_reg st d (Sval.SInt (Bv.binop (bv_binop op) ta tb))) ]
              | Bv.Const 1L -> [ T_bug (st, "division by zero") ]
              | _ ->
                  let bugs =
                    match feasible gctx st is_zero with
                    | Feasible m ->
                        [ T_bug (constrain st is_zero m, "division by zero") ]
                    | Infeasible -> []
                  in
                  let nz = Bv.not_ is_zero in
                  let conts =
                    match feasible gctx st nz with
                    | Feasible m ->
                        let st = constrain st nz m in
                        [ T_cont
                            (State.set_reg st d
                               (Sval.SInt (Bv.binop (bv_binop op) ta tb))) ]
                    | Infeasible -> []
                  in
                  bugs @ conts)
          | _ ->
              [ T_cont (State.set_reg st d (Sval.SInt (Bv.binop (bv_binop op) ta tb))) ])
      | Ir.Cmp (d, op, ty, a, b) ->
          let res =
            if ty = Ir.Ptr then begin
              let (o1, off1) = as_ptr_exn "cmp" (ev a) in
              let (o2, off2) = as_ptr_exn "cmp" (ev b) in
              if o1 = o2 then Bv.cmp (bv_cmp op) off1 off2
              else
                match op with
                | Ir.Eq -> Bv.ff
                | Ir.Ne -> Bv.tt
                | _ -> err "ordered comparison of unrelated pointers"
            end
            else
              Bv.cmp (bv_cmp op)
                (as_int_exn "cmp" (ev a))
                (as_int_exn "cmp" (ev b))
          in
          [ T_cont (State.set_reg st d (Sval.SInt res)) ]
      | Ir.Select (d, _ty, c, a, b) -> (
          let tc = as_int_exn "select" (ev c) in
          let va = ev a and vb = ev b in
          match (tc.Bv.node, va, vb) with
          | (Bv.Const 1L, _, _) -> [ T_cont (State.set_reg st d va) ]
          | (Bv.Const 0L, _, _) -> [ T_cont (State.set_reg st d vb) ]
          | (_, Sval.SInt ta, Sval.SInt tb) ->
              [ T_cont (State.set_reg st d (Sval.SInt (Bv.ite tc ta tb))) ]
          | (_, Sval.SPtr (o1, off1), Sval.SPtr (o2, off2)) when o1 = o2 ->
              [ T_cont (State.set_reg st d (Sval.SPtr (o1, Bv.ite tc off1 off2))) ]
          | (_, _, _) ->
              (* select over distinct objects: fork on the condition *)
              record_fork gctx st;
              let tside =
                match feasible gctx st tc with
                | Feasible m ->
                    [ T_cont (State.set_reg (constrain st tc m) d va) ]
                | Infeasible -> []
              in
              let nc = Bv.not_ tc in
              let fside =
                match feasible gctx st nc with
                | Feasible m ->
                    [ T_cont (State.set_reg (constrain st nc m) d vb) ]
                | Infeasible -> []
              in
              tside @ fside)
      | Ir.Cast (d, op, to_ty, v, from_ty) ->
          let t = as_int_exn "cast" (ev v) in
          let wf = width_of_ty from_ty and wt = width_of_ty to_ty in
          assert (t.Bv.width = wf);
          let res =
            match op with
            | Ir.Zext -> Bv.zext wt t
            | Ir.Sext -> Bv.sext wt t
            | Ir.Trunc -> Bv.trunc wt t
          in
          [ T_cont (State.set_reg st d (Sval.SInt res)) ]
      | Ir.Alloca (d, ty, n) when Fault.fire gctx.faults Fault.Alloc_fail ->
          ignore (d, ty, n);
          [ T_drop (st, "allocation budget exhausted (injected)") ]
      | Ir.Alloca (d, ty, n) ->
          let (mem, obj) = Memory.alloc st.State.mem ~size:(Ir.size_of_ty ty * n) in
          let st = { st with State.mem = mem } in
          let st =
            State.with_top st (fun fr ->
                { fr with State.frame_objs = obj :: fr.State.frame_objs })
          in
          [ T_cont (State.set_reg st d (Sval.SPtr (obj, Bv.const 64 0L))) ]
      | Ir.Load (d, ty, p) ->
          let (obj, off) = as_ptr_exn "load" (ev p) in
          let width = Ir.size_of_ty ty in
          with_bounds gctx st ~what:"load" ~obj ~off ~width (fun st ->
              match Memory.read st.State.mem ~obj ~off ~width with
              | Ok t when ty <> Ir.Ptr ->
                  [ T_cont
                      (State.set_reg st d
                         (Sval.SInt (Bv.trunc (width_of_ty ty) (pad_to_width t width)))) ]
              | Ok t -> (
                  (* pointer load: a symbolic result is an ITE over constant
                     raw encodings — fork per feasible alternative *)
                  match t.Bv.node with
                  | Bv.Const raw -> [ T_cont (State.set_reg st d (decode_raw raw)) ]
                  | _ -> (
                      match decode_ptr_alternatives t with
                      | None -> [ T_drop (st, "unsupported symbolic pointer") ]
                      | Some alts ->
                          if List.length alts > 1 then
                            record_fork gctx st;
                          List.concat_map
                            (fun (guard, raw) ->
                              match feasible gctx st guard with
                              | Feasible m ->
                                  [ T_cont
                                      (State.set_reg (constrain st guard m) d
                                         (decode_raw raw)) ]
                              | Infeasible -> [])
                            alts))
              | Error Memory.Too_wide_ite ->
                  [ T_drop (st, "symbolic offset over too-large object") ]
              | Error e -> [ T_bug (st, Memory.string_of_error e) ])
      | Ir.Store (ty, v, p) ->
          let (obj, off) = as_ptr_exn "store" (ev p) in
          let width = Ir.size_of_ty ty in
          let tv =
            if ty = Ir.Ptr then
              match ev v with
              | Sval.SPtr (o, po) -> encode_ptr o po
              | Sval.SInt t when t.Bv.node = Bv.Const 0L -> Bv.const 64 0L
              | Sval.SInt _ -> err "storing integer as pointer"
            else Bv.zext (8 * width) (as_int_exn "store" (ev v))
          in
          with_bounds gctx st ~what:"store" ~obj ~off ~width (fun st ->
              match Memory.write st.State.mem ~obj ~off ~width ~v:tv with
              | Ok mem -> [ T_cont { st with State.mem = mem } ]
              | Error Memory.Too_wide_ite ->
                  [ T_drop (st, "symbolic offset over too-large object") ]
              | Error e -> [ T_bug (st, Memory.string_of_error e) ])
      | Ir.Gep (d, base, scale, idx) ->
          let (obj, off) = as_ptr_exn "gep" (ev base) in
          let ti = as_int_exn "gep" (ev idx) in
          let ti64 = if ti.Bv.width = 64 then ti else Bv.sext 64 ti in
          let off' =
            Bv.binop Bv.Add off
              (Bv.binop Bv.Mul ti64 (Bv.const 64 (Int64.of_int scale)))
          in
          [ T_cont (State.set_reg st d (Sval.SPtr (obj, off'))) ]
      | Ir.Call (d, _ty, name, args) -> exec_call gctx st d name (List.map ev args)
      | Ir.Phi _ -> err "phi in the middle of a block")
  | [] -> (
      (* terminator *)
      let st = charge gctx st in
      let blk =
        Hashtbl.find (block_tbl gctx fr.State.fn) fr.State.cur_block
      in
      match blk.Ir.term with
      | Ir.Br l -> [ T_cont (enter_block gctx st l) ]
      | Ir.Cbr (c, t, e) -> (
          let tc = as_int_exn "cbr" (eval_value gctx st c) in
          match tc.Bv.node with
          | Bv.Const 1L -> [ T_cont (enter_block gctx st t) ]
          | Bv.Const 0L -> [ T_cont (enter_block gctx st e) ]
          | _ ->
              let nc = Bv.not_ tc in
              let tf = feasible gctx st tc and ff_ = feasible gctx st nc in
              (match (tf, ff_) with
              | (Feasible mt, Feasible mf) ->
                  record_fork gctx st;
                  if gctx.building then
                    gctx.fork_conds <- nc :: tc :: gctx.fork_conds;
                  [ T_cont (enter_block gctx (constrain st tc mt) t);
                    T_cont (enter_block gctx (constrain st nc mf) e) ]
              | (Feasible _, Infeasible) -> [ T_cont (enter_block gctx st t) ]
              | (Infeasible, Feasible _) -> [ T_cont (enter_block gctx st e) ]
              | (Infeasible, Infeasible) ->
                  (* the path condition itself became unsatisfiable *)
                  []))
      | Ir.Ret v -> (
          let rv = Option.map (eval_value gctx st) v in
          (* free this frame's allocas *)
          let mem =
            List.fold_left Memory.kill st.State.mem (State.top st).State.frame_objs
          in
          let st = { st with State.mem = mem } in
          match st.State.frames with
          | [ _ ] ->
              let code = match rv with Some (Sval.SInt t) -> Some t | _ -> None in
              [ T_exit (st, code) ]
          | frame :: caller :: rest ->
              let st = { st with State.frames = caller :: rest } in
              let st =
                match (frame.State.ret_dst, rv) with
                | (Some d, Some v) -> State.set_reg st d v
                | (Some d, None) ->
                    State.set_reg st d (Sval.SInt (Bv.const 32 0L))
                | (None, _) -> st
              in
              [ T_cont st ]
          | [] -> err "return with no frame")
      | Ir.Unreachable -> [ T_bug (st, "reached unreachable code") ])

and pad_to_width (t : Bv.t) width =
  if t.Bv.width = 8 * width then t else Bv.zext (8 * width) t

and exec_call gctx (st : State.t) dst name (args : Sval.t list) :
    transition list =
  let set v = match dst with Some d -> State.set_reg st d v | None -> st in
  match name with
  | "__input" ->
      let idx = as_int_exn "__input" (List.nth args 0) in
      [ T_cont (set (Sval.SInt (input_byte gctx st idx))) ]
  | "__input_size" ->
      [ T_cont
          (set (Sval.SInt (Bv.const 32 (Int64.of_int (Array.length gctx.input_vars))))) ]
  | "__output" ->
      let c = as_int_exn "__output" (List.nth args 0) in
      [ T_cont { st with State.out_rev = Bv.trunc 8 c :: st.State.out_rev } ]
  | "__abort" -> [ T_bug (st, "abort called") ]
  | "__assert" -> (
      let c = as_int_exn "__assert" (List.nth args 0) in
      let fail = Bv.cmp Bv.Eq c (Bv.const c.Bv.width 0L) in
      match fail.Bv.node with
      | Bv.Const 1L -> [ T_bug (st, "assertion failure") ]
      | Bv.Const 0L -> [ T_cont st ]
      | _ ->
          let bugs =
            match feasible gctx st fail with
            | Feasible m -> [ T_bug (constrain st fail m, "assertion failure") ]
            | Infeasible -> []
          in
          let ok = Bv.not_ fail in
          let conts =
            match feasible gctx st ok with
            | Feasible m -> [ T_cont (constrain st ok m) ]
            | Infeasible -> []
          in
          bugs @ conts)
  | _ -> (
      match Ir.find_func gctx.modul name with
      | None -> err "call to unknown function %s" name
      | Some fn -> (
          let params = fn.Ir.params in
          if List.length params <> List.length args then
            err "arity mismatch calling %s" name;
          let inline () =
            let regs =
              List.fold_left2
                (fun m (r, _) v -> IMap.add r v m)
                IMap.empty params args
            in
            let entry = Ir.entry fn in
            Hashtbl.replace gctx.covered (fn.Ir.fname, entry.Ir.bid) ();
            let frame =
              {
                State.fn;
                regs;
                cur_block = entry.Ir.bid;
                prev_block = -1;
                insts = entry.Ir.insts;
                ret_dst = dst;
                frame_objs = [];
              }
            in
            [ T_cont { st with State.frames = frame :: st.State.frames } ]
          in
          (* the builder always inlines: nested branch conjuncts must flow
             through the real Cbr discipline to be flavored correctly *)
          match gctx.summaries with
          | Some tbl when not gctx.building -> (
              match Hashtbl.find_opt tbl name with
              | Some (Summary.Summarized traces) ->
                  gctx.sum_hits <- gctx.sum_hits + 1;
                  (match gctx.prof with
                  | Some p ->
                      let cell = prof_site p st in
                      cell.Obs.Profile.s_sum_hits <-
                        cell.Obs.Profile.s_sum_hits + 1
                  | None -> ());
                  (match gctx.span with
                  | Some parent ->
                      Obs.Span.event ~parent
                        ~args:[ ("fn", fn.Ir.fname) ]
                        "summary.instantiate"
                  | None -> ());
                  Hashtbl.replace gctx.covered
                    (fn.Ir.fname, (Ir.entry fn).Ir.bid) ();
                  apply_summary gctx st dst fn traces
                    (Array.of_list
                       (List.map (as_int_exn "summary arg") args))
              | Some (Summary.Opaque _) ->
                  gctx.sum_opaque <- gctx.sum_opaque + 1;
                  (match gctx.prof with
                  | Some p ->
                      let cell = prof_site p st in
                      cell.Obs.Profile.s_sum_opaque <-
                        cell.Obs.Profile.s_sum_opaque + 1
                  | None -> ());
                  inline ()
              | None -> inline ())
          | _ -> inline ()))

(** Instantiate a summary at a call site: substitute the actual argument
    terms and the caller's current global cell contents into each trace,
    re-constrain its conjuncts in order, and turn the survivors into
    transitions.  The replay rules reproduce inline exploration exactly
    (see summary.mli): condition conjuncts constrain whenever feasible;
    branch conjuncts additionally check the negation and, when the branch
    is one-sided, continue without the conjunct and without adopting a
    new model — which is precisely what the Cbr code above does. *)
and apply_summary gctx (st : State.t) dst (fn : Ir.func)
    (traces : Summary.trace list) (args : Bv.t array) : transition list =
  let memo = Hashtbl.create 64 in
  let lookup v =
    if v >= Summary.global_cell_base then
      match Summary.cell_of_var gctx.glayout v with
      | Some (gname, off) -> (
          match List.assoc_opt gname gctx.globals with
          | Some obj -> (
              match Memory.find st.State.mem obj with
              | Some o -> o.Memory.cells.(off)
              | None -> err "summary: global %s has no object" gname)
          | None -> err "summary: unknown global %s" gname)
      | None -> err "summary: cell variable %d outside layout" v
    else begin
      let i = v - Summary.param_base in
      if i >= 0 && i < Array.length args then args.(i)
      else err "summary: parameter variable %d out of range" v
    end
  in
  let sub t = Summary.subst ~memo ~lookup t in
  (* all traces replay against the state at the call, so one memo serves
     the whole instantiation *)
  let rec replay st (conjs : Summary.conjunct list) : State.t option =
    match conjs with
    | [] -> Some st
    | { Summary.c_fork; c_term } :: rest -> (
        let c = sub c_term in
        match c.Bv.node with
        | Bv.Const 1L -> replay st rest (* inline's constant fast path *)
        | Bv.Const 0L -> None
        | _ ->
            if not c_fork then (
              match feasible gctx st c with
              | Infeasible -> None
              | Feasible m -> replay (constrain st c m) rest)
            else (
              match feasible gctx st c with
              | Infeasible -> None
              | Feasible m -> (
                  match feasible gctx st (Bv.not_ c) with
                  | Infeasible ->
                      (* one-sided branch: inline would not constrain and
                         would keep the old model *)
                      replay st rest
                  | Feasible _ ->
                      if gctx.building then
                        gctx.fork_conds <- c :: gctx.fork_conds;
                      replay (constrain st c m) rest)))
  in
  let finish (st : State.t) (tr : Summary.trace) : transition =
    List.iter (fun k -> Hashtbl.replace gctx.covered k ()) tr.Summary.t_covered;
    match tr.Summary.t_outcome with
    | Summary.O_bug { bg_kind; bg_fn; bg_block } ->
        (* push a synthetic frame so bug attribution (function name at the
           top of the stack) matches the inline exploration *)
        let bfn =
          match Ir.find_func gctx.modul bg_fn with Some f -> f | None -> fn
        in
        let frame =
          {
            State.fn = bfn;
            regs = IMap.empty;
            cur_block = bg_block;
            prev_block = -1;
            insts = [];
            ret_dst = None;
            frame_objs = [];
          }
        in
        T_bug ({ st with State.frames = frame :: st.State.frames }, bg_kind)
    | Summary.O_ret rv ->
        let mem =
          List.fold_left
            (fun mem (gname, off, v8) ->
              match List.assoc_opt gname gctx.globals with
              | Some obj -> (
                  match
                    Memory.write mem ~obj
                      ~off:(Bv.const 64 (Int64.of_int off))
                      ~width:1 ~v:(sub v8)
                  with
                  | Ok mem' -> mem'
                  | Error _ -> err "summary: global write to %s failed" gname)
              | None -> err "summary: unknown global %s" gname)
            st.State.mem tr.Summary.t_writes
        in
        let st = { st with State.mem = mem } in
        let st =
          match (dst, rv) with
          | (Some d, Some t) -> State.set_reg st d (Sval.SInt (sub t))
          | (Some d, None) -> State.set_reg st d (Sval.SInt (Bv.const 32 0L))
          | (None, _) -> st
        in
        T_cont st
  in
  List.filter_map
    (fun (tr : Summary.trace) ->
      Option.map
        (fun st' -> finish st' tr)
        (replay st tr.Summary.t_conjuncts))
    traces
