(** Periodic run snapshots for kill/resume.

    A snapshot captures, at a quiescent point of the sequential
    exploration loop (between worklist pops, when the worklist is exactly
    the set of unexplored frontier states), everything needed to continue
    the run: the frontier, the accumulated verdicts (exits, bugs,
    coverage), the executor counters and the degradations so far.

    On-disk discipline is the same as {!Overify_solver.Store}: a
    {!Overify_solver.Binfile} frame (magic + version + length + [Marshal]
    payload + MD5 trailer) written atomically, so a crash mid-write can
    never tear the file, and a torn or stale file loads as "no
    checkpoint".  A fingerprint of (program, input size, bounds checking)
    is stored and checked on load — resuming against a different program
    silently starts fresh rather than merging unrelated verdicts.

    States contain hash-consed {!Bv} terms, which [Marshal] flattens into
    stale copies; [load] re-interns every term through {!Bv.rebuilder},
    so resumed states are indistinguishable from ones built natively. *)

type snapshot = {
  ck_paths : int;  (** completed paths at snapshot time *)
  ck_exits : (string * int64) list;
  ck_bugs : ((string * string) * string) list;
      (** (kind, function) -> smallest witness so far *)
  ck_covered : (string * int) list;
  ck_insts : int;
  ck_forks : int;
  ck_degs : (string * string * int) list;
      (** raw (kind, where, paths) degradation events *)
  ck_frontier : State.t list;  (** unexplored states, worklist order *)
}

val fingerprint :
  Overify_ir.Ir.modul -> input_size:int -> check_bounds:bool -> string
(** Digest identifying what a checkpoint is a checkpoint {e of}. *)

val save : dir:string -> digest:string -> snapshot -> bool
(** Atomically write the snapshot; [false] on failure (a checkpoint
    write must never crash the run). *)

val load : dir:string -> digest:string -> snapshot option
(** Read, validate (frame + fingerprint) and re-intern; [None] when
    missing, torn, wrong-version or for a different program/config. *)

val delete : dir:string -> unit
(** Remove the snapshot (called when a run completes exploration —
    a finished run must not be "resumed" into a duplicate). *)

val file : dir:string -> string
(** The snapshot path inside [dir]. *)
