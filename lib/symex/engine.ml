(** Top-level symbolic-execution engine: explores all paths of a module's
    [main] for a given symbolic input size, under time/path budgets, and
    reports the statistics the paper's evaluation uses (t_verify, number of
    paths, number of interpreted instructions, solver counters).

    Exploration runs either sequentially ([`Dfs]/[`Bfs]) or on [n] OCaml
    domains ([`Parallel n]) with a work-sharing scheduler: a lock-protected
    shared frontier of states, each worker owning a private solver/blast
    context, and global budgets enforced through atomics.  Results are
    deterministic modulo scheduling — for a run that completes exploration,
    [paths], [exit_codes], [bugs] and [blocks_covered] are canonically
    sorted/merged so that every searcher (and every worker count) reports
    byte-identical values.

    {2 Hardening}

    Mid-run failures degrade instead of aborting.  A worker exception
    (real or injected via {!Fault}) abandons only the path that raised it;
    a per-query solver timeout demotes that one path to unknown; budget
    exhaustion stops exploration but keeps everything proved so far.
    Every such event is recorded in [result.degradations] — what was hit,
    where, and how many paths it cost — and [complete] is now simply
    "no degradations".  The only exception that still escapes [run] is
    {!Fault.Killed}, the injected analogue of SIGKILL, which the
    checkpoint/resume machinery (sequential searchers, [checkpoint_dir])
    exists to survive. *)

module Ir = Overify_ir.Ir
module Bv = Overify_solver.Bv
module Solver = Overify_solver.Solver
module Obs = Overify_obs.Obs
module Fault = Overify_fault.Fault
module Cancel = Overify_fault.Cancel

type config = {
  input_size : int;
  max_paths : int;       (** stop after completing this many paths *)
  max_insts : int;       (** total dynamic instruction budget *)
  timeout : float;       (** wall-clock seconds *)
  check_bounds : bool;   (** fork out-of-bounds bug paths *)
  searcher : [ `Dfs | `Bfs | `Parallel of int ];
  profile : bool;        (** attribute cost per (function, block) *)
  summaries : bool;
      (** compositional mode: build (or load from the store) per-function
          summaries bottom-up before exploring, and instantiate them at
          call sites instead of inlining.  Verdicts are identical either
          way — only instructions/forks/queries move.  Defaults to the
          [OVERIFY_SUMMARIES] environment variable. *)
  solver_cache : bool option;
      (** enable the solver's reuse layers; [None] defers to the
          [OVERIFY_SOLVER_CACHE] environment variable (default on).
          Answers are identical either way — only hit counters move. *)
  cache_dir : string option;
      (** attach a persistent cross-run solver store in this directory,
          shared by all workers and saved when the run ends *)
  store : Overify_solver.Store.t option;
      (** an already-open store to reuse instead of loading from
          [cache_dir]; the caller owns it (the engine never saves it) —
          this is how [Serve] keeps one warm store across requests *)
  faults : Fault.t option;
      (** injected-fault schedule (solver timeouts, store corruption,
          alloc exhaustion, worker crashes, kill); [None] = no chaos *)
  checkpoint_dir : string option;
      (** write periodic frontier snapshots here (sequential searchers
          only); enables [resume] *)
  checkpoint_every : int;
      (** snapshot every N completed paths (sequential searchers) *)
  resume : bool;
      (** seed the run from [checkpoint_dir]'s snapshot when one exists
          and matches this program/config; otherwise start fresh *)
  span : Obs.Span.t option;
      (** parent span for request tracing: the run opens an
          ["engine.run"] child under it, with ["summary.build"] and
          per-worker ["symex.worker<i>"] children whose attached counters
          are the very same per-worker sums that define the result totals
          — so per-span sums equal [result] exactly, like the profile's
          per-site sums.  Solver contexts get per-query ["solver.check"]
          leaves.  [None] (the default) traces nothing. *)
  cancel : Overify_fault.Cancel.t option;
      (** cooperative cancellation token (see {!Overify_fault.Cancel}),
          checked at worklist pops, at the periodic budget points, around
          the summary build and before every solver query.  A set (or
          past-deadline) token stops exploration promptly and is reported
          as a ["deadline_exceeded"] degradation carrying the
          cancellation reason — the run still returns every verdict
          proved so far, and anything already published to the shared
          store/summary caches is complete (pure memoization), so a
          cancelled-then-retried run is byte-identical to an uncancelled
          one under [result_to_json ~deterministic].  [None] (the
          default) cancels nothing and costs one [option] branch per
          check point. *)
}

let env_summaries =
  match Sys.getenv_opt "OVERIFY_SUMMARIES" with
  | Some ("1" | "true" | "on") -> true
  | _ -> false

let default_config =
  {
    input_size = 4;
    max_paths = 1_000_000;
    max_insts = 200_000_000;
    timeout = 60.0;
    check_bounds = true;
    searcher = `Dfs;
    profile = false;
    summaries = env_summaries;
    solver_cache = None;
    cache_dir = None;
    store = None;
    faults = None;
    checkpoint_dir = None;
    checkpoint_every = 64;
    resume = false;
    span = None;
    cancel = None;
  }

type bug = {
  kind : string;
  input : string;        (** concrete input reproducing the bug *)
  at_function : string;
}

type degradation = {
  d_kind : string;
      (** what gave way: one of [path_budget], [inst_budget],
          [wall_clock], [solver_timeout], [worker_crash],
          [executor_error], [alloc_exhausted], [path_dropped],
          [deadline_exceeded] (cooperative cancellation) *)
  d_where : string;  (** site/reason detail (may be empty) *)
  d_paths : int;     (** paths affected (lower bound for budget kinds) *)
}

type worker_stat = {
  w_instructions : int;
  w_forks : int;
  w_queries : int;
  w_cache_hits : int;
  w_solver_time : float;
  w_components : int;
  w_component_solves : int;
  w_hits_exact : int;
  w_hits_canon : int;
  w_hits_subset : int;
  w_hits_superset : int;
  w_hits_store : int;
}

type result = {
  paths : int;                  (** completed (exited) paths *)
  bugs : bug list;
  instructions : int;           (** dynamic instructions over all paths *)
  forks : int;
  queries : int;
  cache_hits : int;
  solver_time : float;
  components : int;             (** independent subproblems seen *)
  component_solves : int;       (** raw blast+SAT solver invocations *)
  hits_exact : int;             (** per-layer solver cache hits... *)
  hits_canon : int;
  hits_subset : int;
  hits_superset : int;
  hits_store : int;             (** ...all sums over workers *)
  summary_instantiated : int;   (** call sites answered by a summary *)
  summary_opaque : int;         (** call sites whose summary was opaque *)
  summary_computed : int;       (** summaries built fresh this run *)
  summary_cached : int;         (** summaries loaded from the store *)
  time : float;                 (** total verification wall time *)
  complete : bool;
      (** derived: [degradations = []].  Kept because "did exploration
          cover everything" is the question most callers ask. *)
  degradations : degradation list;
      (** the structured reasons a run is incomplete, canonically sorted
          (kind, where); empty iff [complete] *)
  faults_injected : (string * int) list;
      (** per-kind injected-fault counts (all kinds, zeros included)
          when a schedule was attached; [[]] otherwise *)
  resumed : bool;  (** this run was seeded from a checkpoint *)
  exit_codes : (string * int64) list;
      (** per completed path: concrete witness input and its exit code *)
  blocks_covered : int;  (** basic blocks reached on some explored path *)
  blocks_total : int;    (** blocks of the functions reachable from main *)
  jobs : int;            (** worker domains used (1 for `Dfs/`Bfs) *)
  worker_stats : worker_stat list;
      (** per-worker solver/executor counters, in worker order; the
          reported totals are by definition their sums *)
  profile : Obs.Profile.t option;
      (** per-(function, block) attribution, merged over workers; present
          iff [config.profile] was set *)
}

(** Extract a concrete input string from a state's model. *)
let input_of_model (input_vars : int array) model =
  String.init (Array.length input_vars) (fun i ->
      let v =
        match List.assoc_opt input_vars.(i) model with
        | Some v -> Int64.to_int (Int64.logand v 0xFFL)
        | None -> 0
      in
      Char.chr v)

(* ---------------- per-worker accumulation ---------------- *)

(** Everything one worker (or the single sequential explorer) accumulates.
    Workers never share mutable state: the executor context (with its solver
    context, coverage table and counters) and the result lists are private,
    merged deterministically after the join. *)
type worker = {
  gctx : Executor.gctx;
  mutable exits : (string * int64) list;   (** (witness, exit code), unordered *)
  bug_tbl : (string * string, string) Hashtbl.t;
      (** (kind, function) -> smallest witness input seen *)
  mutable degs : (string * string * int) list;
      (** raw degradation events (kind, where, paths), merged after join *)
  mutable killed : string option;
      (** parallel only: an injected kill seen by this worker; re-raised
          after the join (a kill must look like process death) *)
}

let degrade w kind where npaths = w.degs <- (kind, where, npaths) :: w.degs

let record_exit w input_vars (st : State.t) code =
  (match w.gctx.Executor.prof with
  | Some p ->
      (* the path completed at main's returning block *)
      let fr = State.top st in
      let cell =
        Obs.Profile.site p ~fn:fr.State.fn.Ir.fname ~block:fr.State.cur_block
      in
      cell.Obs.Profile.s_paths <- cell.Obs.Profile.s_paths + 1
  | None -> ());
  let witness = input_of_model input_vars st.State.model in
  let code_v =
    match code with
    | Some t ->
        Bv.to_signed 32
          (Bv.eval
             (fun id ->
               match List.assoc_opt id st.State.model with
               | Some v -> v
               | None -> 0L)
             t)
    | None -> 0L
  in
  w.exits <- (witness, code_v) :: w.exits

(** Deduplicate by (kind, function) but keep the lexicographically smallest
    witness: every occurrence of a bug is still enumerated, so the kept
    witness is independent of exploration order — the determinism contract
    extends to [bugs]. *)
let record_bug w input_vars (st : State.t) kind =
  let fname = (State.top st).State.fn.Ir.fname in
  let witness = input_of_model input_vars st.State.model in
  match Hashtbl.find_opt w.bug_tbl (kind, fname) with
  | Some old when old <= witness -> ()
  | _ -> Hashtbl.replace w.bug_tbl (kind, fname) witness

let record_error w msg =
  Hashtbl.replace w.bug_tbl ("executor error: " ^ msg, "?") "";
  degrade w "executor_error" msg 1

(** An abandoned path (T_drop), classified for the degradation ladder. *)
let record_drop w (st : State.t) reason =
  let kind =
    if String.length reason >= 10 && String.sub reason 0 10 = "allocation" then
      "alloc_exhausted"
    else "path_dropped"
  in
  let fname = (State.top st).State.fn.Ir.fname in
  degrade w kind (Printf.sprintf "%s: %s" fname reason) 1

(* ---------------- checkpointing (sequential searchers) ---------------- *)

type ckpt = {
  ck_dir : string;
  ck_dig : string;
  ck_every : int;
  mutable ck_at : int;  (** [paths] when the last snapshot was written *)
}

let snapshot_of_worker (w : worker) paths frontier : Checkpoint.snapshot =
  {
    Checkpoint.ck_paths = paths;
    ck_exits = w.exits;
    ck_bugs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) w.bug_tbl [];
    ck_covered =
      Hashtbl.fold (fun k () acc -> k :: acc) w.gctx.Executor.covered [];
    ck_insts = w.gctx.Executor.insts_executed;
    ck_forks = w.gctx.Executor.forks;
    ck_degs = w.degs;
    ck_frontier = frontier;
  }

(* ---------------- sequential exploration ---------------- *)

exception Out_of_budget of string
(** Which budget tripped: [path_budget] / [inst_budget] / [wall_clock]. *)

(** Classic single-worklist loop, DFS (stack) or BFS (queue), with
    per-path failure containment: an exception thrown while driving one
    state abandons that state (recording a degradation) and the loop
    carries on with the rest of the worklist.  Only {!Fault.Killed} (the
    injected SIGKILL) and genuine resource collapse (OOM, stack overflow)
    still escape.

    Checkpoints are written between pops — at that point the worklist is
    exactly the set of unexplored frontier states, so snapshot + rest of
    the run partitions the path tree and resume reproduces an
    uninterrupted run's verdicts exactly.

    Returns completed paths (including [base_paths] from a resumed
    snapshot). *)
let run_sequential config (w : worker) init_states deadline input_vars
    ~base_paths ~(ckpt : ckpt option) : int =
  let gctx = w.gctx in
  let stack = ref [] in
  let queue = Queue.create () in
  let push st =
    match config.searcher with
    | `Bfs -> Queue.add st queue
    | _ -> stack := st :: !stack
  in
  let pop () =
    match config.searcher with
    | `Bfs -> Queue.take_opt queue
    | _ -> (
        match !stack with
        | st :: rest ->
            stack := rest;
            Some st
        | [] -> None)
  in
  (* DFS pops the head, so seed in reverse to preserve frontier order *)
  (match config.searcher with
  | `Bfs -> List.iter push init_states
  | _ -> List.iter push (List.rev init_states));
  let paths = ref base_paths in
  let budget_kind () =
    if !paths >= config.max_paths then Some "path_budget"
    else if gctx.Executor.insts_executed >= config.max_insts then
      Some "inst_budget"
    else if Unix.gettimeofday () > deadline then Some "wall_clock"
    else None
  in
  let check_budget () =
    (* cancellation outranks budgets: a deadline set at admission may
       predate the engine's own wall clock *)
    Cancel.check config.cancel;
    match budget_kind () with
    | Some k -> raise (Out_of_budget k)
    | None -> ()
  in
  let frontier () =
    match config.searcher with
    | `Bfs -> List.of_seq (Queue.to_seq queue)
    | _ -> !stack
  in
  let maybe_checkpoint () =
    match ckpt with
    | Some ck when !paths - ck.ck_at >= ck.ck_every ->
        ck.ck_at <- !paths;
        ignore
          (Checkpoint.save ~dir:ck.ck_dir ~digest:ck.ck_dig
             (snapshot_of_worker w !paths (frontier ())))
    | _ -> ()
  in
  let check_counter = ref 0 in
  let rec advance st =
    incr check_counter;
    if !check_counter land 2047 = 0 then check_budget ();
    match Executor.step gctx st with
    | [ Executor.T_cont st' ] -> advance st'
    | transitions ->
        List.iter
          (fun tr ->
            match tr with
            | Executor.T_cont st' -> push st'
            | Executor.T_exit (st', code) ->
                incr paths;
                record_exit w input_vars st' code;
                check_budget ()
            | Executor.T_drop (st', reason) -> record_drop w st' reason
            | Executor.T_bug (st', kind) -> record_bug w input_vars st' kind)
          transitions
  in
  (try
     let running = ref true in
     while !running do
       maybe_checkpoint ();
       (* worklist-pop cancellation point *)
       Cancel.check config.cancel;
       match pop () with
       | None -> running := false
       | Some st -> (
           try advance st with
           | (Out_of_budget _ | Cancel.Cancelled _ | Fault.Killed _
             | Out_of_memory | Stack_overflow) as e ->
               raise e
           | Solver.Timeout ->
               degrade w "solver_timeout" "solver query gave up" 1
           | Executor.Symex_error msg -> record_error w msg
           | Fault.Crash msg -> degrade w "worker_crash" msg 1
           | e -> degrade w "worker_crash" (Printexc.to_string e) 1)
     done;
     (* exploration drained completely: a finished run must not be
        resumable into a duplicate *)
     match ckpt with
     | Some ck -> Checkpoint.delete ~dir:ck.ck_dir
     | None -> ()
   with
  | Out_of_budget k ->
      (* everything still on the worklist (plus the in-flight state) is
         unexplored; the last periodic snapshot, if any, remains on disk
         so a budget-exhausted run can also be resumed *)
      degrade w k "exploration budget" (1 + List.length (frontier ()))
  | Cancel.Cancelled reason ->
      (* cooperative cancellation: same shape as a tripped budget — keep
         every verdict proved so far, report the frontier as unexplored *)
      degrade w "deadline_exceeded" reason (1 + List.length (frontier ())));
  !paths

(* ---------------- parallel exploration ---------------- *)

exception Halt
(** Raised inside a worker to abandon its current state chain after a global
    stop (budget exhausted or an injected kill). *)

(** Work-sharing scheduler over [n] domains.  The frontier is a shared
    queue under one mutex; a worker drives each popped state depth-first,
    keeps the first continuation of every fork for itself and publishes the
    rest.  [active] counts workers currently driving a state, so the
    termination condition (empty frontier and nobody active) is detected
    without polling.  Budgets are global: completed paths and executed
    instructions are aggregated in atomics, and any worker tripping a limit
    sets [stop] for everyone.

    Containment matches the sequential loop: a per-path exception degrades
    that path and the worker moves on; only an injected kill (or OOM /
    stack overflow) stops the whole run, and it is re-raised after the
    join so it behaves like process death to the caller. *)
let run_parallel config n (workers : worker list) init_states deadline
    input_vars ~base_paths : int =
  let mutex = Mutex.create () in
  let wakeup = Condition.create () in
  let frontier = Queue.create () in
  let active = ref 0 in
  let stop = Atomic.make false in
  let paths = Atomic.make base_paths in
  let insts = Atomic.make 0 in
  List.iter (fun st -> Queue.add st frontier) init_states;
  let halt () =
    Atomic.set stop true;
    Mutex.lock mutex;
    Condition.broadcast wakeup;
    Mutex.unlock mutex
  in
  let out_of_budget () =
    Atomic.get paths >= config.max_paths
    || Atomic.get insts >= config.max_insts
    || Unix.gettimeofday () > deadline
  in
  let worker_loop (w : worker) =
    let gctx = w.gctx in
    (* instruction counts are flushed to the shared atomic in batches so the
       global budget is enforced without per-step contention *)
    let flushed = ref 0 in
    let flush_insts () =
      let d = gctx.Executor.insts_executed - !flushed in
      if d > 0 then begin
        ignore (Atomic.fetch_and_add insts d);
        flushed := gctx.Executor.insts_executed
      end
    in
    let check_counter = ref 0 in
    let pop () =
      Mutex.lock mutex;
      let rec go () =
        if Atomic.get stop then None
        else
          match Queue.take_opt frontier with
          | Some st ->
              incr active;
              Some st
          | None ->
              if !active = 0 then begin
                (* global quiescence: every path fully explored *)
                Condition.broadcast wakeup;
                None
              end
              else begin
                Condition.wait wakeup mutex;
                go ()
              end
      in
      let r = go () in
      Mutex.unlock mutex;
      r
    in
    let publish sts =
      if sts <> [] then begin
        Mutex.lock mutex;
        List.iter (fun st -> Queue.add st frontier) sts;
        Condition.broadcast wakeup;
        Mutex.unlock mutex
      end
    in
    let retire () =
      Mutex.lock mutex;
      decr active;
      if !active = 0 && Queue.is_empty frontier then Condition.broadcast wakeup;
      Mutex.unlock mutex
    in
    let rec advance st =
      incr check_counter;
      if !check_counter land 255 = 0 then begin
        flush_insts ();
        if Atomic.get stop then raise Halt;
        Cancel.check config.cancel;
        if out_of_budget () then begin
          halt ();
          raise Halt
        end
      end;
      match Executor.step gctx st with
      | [ Executor.T_cont st' ] -> advance st'
      | transitions ->
          let conts = ref [] in
          List.iter
            (fun tr ->
              match tr with
              | Executor.T_cont st' -> conts := st' :: !conts
              | Executor.T_exit (st', code) ->
                  ignore (Atomic.fetch_and_add paths 1);
                  record_exit w input_vars st' code;
                  if out_of_budget () then begin
                    halt ();
                    raise Halt
                  end
              | Executor.T_drop (st', reason) -> record_drop w st' reason
              | Executor.T_bug (st', kind) -> record_bug w input_vars st' kind)
            transitions;
          (* continue with the first fork child; share the rest *)
          (match List.rev !conts with
          | [] -> ()
          | first :: rest ->
              publish rest;
              advance first)
    in
    let rec work () =
      match pop () with
      | None -> ()
      | Some st ->
          (try advance st with
          | Halt -> ()
          | Cancel.Cancelled _ ->
              (* the global degrade entry after the join carries the
                 reason; here just stop everyone *)
              halt ()
          | Solver.Timeout -> degrade w "solver_timeout" "solver query gave up" 1
          | Executor.Symex_error msg -> record_error w msg
          | Fault.Crash msg -> degrade w "worker_crash" msg 1
          | Fault.Killed msg ->
              w.killed <- Some msg;
              halt ()
          | (Out_of_memory | Stack_overflow) as e ->
              w.killed <- Some (Printexc.to_string e);
              halt ()
          | e -> degrade w "worker_crash" (Printexc.to_string e) 1);
          flush_insts ();
          retire ();
          work ()
    in
    work ()
  in
  let spawned =
    List.map (fun w -> Domain.spawn (fun () -> worker_loop w)) (List.tl workers)
  in
  worker_loop (List.hd workers);
  List.iter Domain.join spawned;
  ignore n;
  (if Atomic.get stop && not (List.exists (fun w -> w.killed <> None) workers)
   then
     let kind, where =
       match config.cancel with
       | Some c when Cancel.cancelled c -> ("deadline_exceeded", Cancel.reason c)
       | _ ->
           ( (if Atomic.get paths >= config.max_paths then "path_budget"
              else if Atomic.get insts >= config.max_insts then "inst_budget"
              else "wall_clock"),
             "exploration budget" )
     in
     degrade (List.hd workers) kind where (Queue.length frontier));
  Atomic.get paths

(* ---------------- driver ---------------- *)

let run ?(config = default_config) (m : Ir.modul) : result =
  (* each run is self-contained: drop hash-consed terms; solver caches are
     per-worker and freshly created below *)
  Bv.reset ();
  let t_start = Unix.gettimeofday () in
  let deadline = t_start +. config.timeout in
  (* request tracing: one engine child under the caller's span, opened
     here so every sub-span (summary build, workers, solver queries)
     nests inside its interval *)
  let eng_span =
    Option.map (fun parent -> Obs.Span.start ~parent "engine.run") config.span
  in
  (* globals *)
  let mem = ref Memory.empty in
  let globals =
    List.map
      (fun (g : Ir.global) ->
        let (m', obj) =
          Memory.alloc_bytes ~writable:(not g.Ir.gconst) !mem g.Ir.ginit
            ~size:g.Ir.gsize
        in
        mem := m';
        (g.Ir.gname, obj))
      m.Ir.globals
  in
  (* fresh symbolic variables for the input bytes; the ids are a pure
     function of the input size, so models recorded before a checkpoint
     stay valid after a resume *)
  let input_vars =
    Array.init config.input_size (fun i -> 1_000_000 + (config.input_size * 7919) + i)
  in
  let main =
    match Ir.find_func m "main" with
    | Some f -> f
    | None -> invalid_arg "Engine.run: module has no main"
  in
  let entry = Ir.entry main in
  let init_state =
    {
      State.frames =
        [
          {
            State.fn = main;
            regs = State.IMap.empty;
            cur_block = entry.Ir.bid;
            prev_block = -1;
            insts = entry.Ir.insts;
            ret_dst = None;
            frame_objs = [];
          };
        ];
      mem = !mem;
      path = [];
      model = [];
      out_rev = [];
      steps = 0;
    }
  in
  let njobs =
    match config.searcher with
    | `Parallel j ->
        if j < 1 then invalid_arg "Engine.run: `Parallel needs >= 1 worker";
        j
    | `Dfs | `Bfs -> 1
  in
  let ck_digest =
    Checkpoint.fingerprint m ~input_size:config.input_size
      ~check_bounds:config.check_bounds
  in
  let snapshot =
    if config.resume then
      Option.bind config.checkpoint_dir (fun dir ->
          Checkpoint.load ~dir ~digest:ck_digest)
    else None
  in
  (* one persistent store for the whole run, shared by every worker (it
     locks internally).  A caller-provided store ([config.store]) is
     borrowed — its owner decides when to save; a store we load ourselves
     from [cache_dir] is saved after the join as before. *)
  let own_store =
    match config.store with
    | Some _ -> None
    | None ->
        Option.map
          (fun dir -> Overify_solver.Store.load ?faults:config.faults ~dir ())
          config.cache_dir
  in
  let store =
    match config.store with Some _ as s -> s | None -> own_store
  in
  let glayout = Overify_summary.Summary.layout m in
  let make_worker i =
    let prof = if config.profile then Some (Obs.Profile.create ()) else None in
    let solver =
      Solver.create ~deadline ?cancel:config.cancel
        ?hist:(Option.map (fun p -> p.Obs.Profile.qhist) prof)
        ?cache:config.solver_cache ?store ?faults:config.faults ()
    in
    let wspan =
      Option.map
        (fun parent ->
          Obs.Span.start ~parent (Printf.sprintf "symex.worker%d" i))
        eng_span
    in
    Solver.set_span solver wspan;
    let gctx =
      {
        Executor.modul = m;
        block_tbls = Hashtbl.create 16;
        globals;
        input_vars;
        check_bounds = config.check_bounds;
        solver;
        faults = config.faults;
        insts_executed = 0;
        forks = 0;
        covered = Hashtbl.create 64;
        prof;
        glayout;
        summaries = None;
        building = false;
        sym_deref = false;
        fork_conds = [];
        sum_hits = 0;
        sum_opaque = 0;
        span = wspan;
      }
    in
    Hashtbl.replace gctx.Executor.covered (main.Ir.fname, entry.Ir.bid) ();
    { gctx; exits = []; bug_tbl = Hashtbl.create 8; degs = []; killed = None }
  in
  let workers = List.init njobs make_worker in
  (* compositional mode: worker 0 builds (or loads) the summary table
     bottom-up before exploration, on its own solver and counters —
     so build cost is charged like any other execution — and every
     worker shares the resulting (read-only from here on) table *)
  let summary_computed, summary_cached =
    if not config.summaries then (0, 0)
    else begin
      let bspan =
        Option.map
          (fun parent -> Obs.Span.start ~parent "summary.build")
          eng_span
      in
      let w0 = List.hd workers in
      let tbl, computed, cached, build_degs =
        (* a build cancelled mid-way degrades like any other build fault:
           summaries already published to the store are individually
           complete, everything unbuilt is explored inline (and the
           exploration loop re-checks the token immediately) *)
        try Summarize.build ~gctx:w0.gctx ~store m
        with Cancel.Cancelled reason ->
          (Hashtbl.create 0, 0, 0, [ ("deadline_exceeded", reason) ])
      in
      List.iter
        (fun w -> w.gctx.Executor.summaries <- Some tbl)
        workers;
      (* a fault that fires during summary construction (solver timeout,
         contained crash, dropped path) demotes its function to inline
         exploration — sound, but never silent *)
      List.iter (fun (kind, where) -> degrade w0 kind where 0) build_degs;
      (match bspan with
      | Some sp ->
          Obs.Span.finish sp
            ~counters:
              [ ("computed", float_of_int computed);
                ("cached", float_of_int cached) ]
      | None -> ());
      (computed, cached)
    end
  in
  (* a resumed run continues the snapshot's accumulators in worker 0 and
     explores its saved frontier; the checkpoint was cut at a quiescent
     point, so snapshot + frontier partitions the path tree and the union
     of verdicts equals an uninterrupted run's *)
  let (base_paths, init_states) =
    match snapshot with
    | None -> (0, [ init_state ])
    | Some s ->
        let w0 = List.hd workers in
        w0.exits <- s.Checkpoint.ck_exits;
        List.iter
          (fun (k, v) -> Hashtbl.replace w0.bug_tbl k v)
          s.Checkpoint.ck_bugs;
        List.iter
          (fun k -> Hashtbl.replace w0.gctx.Executor.covered k ())
          s.Checkpoint.ck_covered;
        w0.gctx.Executor.insts_executed <- s.Checkpoint.ck_insts;
        w0.gctx.Executor.forks <- s.Checkpoint.ck_forks;
        w0.degs <- s.Checkpoint.ck_degs;
        (s.Checkpoint.ck_paths, s.Checkpoint.ck_frontier)
  in
  let ckpt =
    match (config.searcher, config.checkpoint_dir) with
    | (`Dfs | `Bfs), Some dir ->
        Some
          {
            ck_dir = dir;
            ck_dig = ck_digest;
            ck_every = max 1 config.checkpoint_every;
            ck_at = base_paths;
          }
    | _ -> None
  in
  let paths =
    match config.searcher with
    | `Dfs | `Bfs ->
        run_sequential config (List.hd workers) init_states deadline input_vars
          ~base_paths ~ckpt
    | `Parallel j ->
        run_parallel config j workers init_states deadline input_vars
          ~base_paths
  in
  (* an injected kill simulates process death: nothing below (merge,
     store save, counters) may run, exactly as if we had been SIGKILLed *)
  List.iter
    (fun w ->
      match w.killed with Some msg -> raise (Fault.Killed msg) | None -> ())
    workers;
  (* ---- deterministic merge: canonical order for everything a completed
     exploration reports, so `Dfs, `Bfs and `Parallel n agree exactly ---- *)
  let exit_codes =
    List.sort compare (List.concat_map (fun w -> w.exits) workers)
  in
  let merged_bugs = Hashtbl.create 16 in
  List.iter
    (fun w ->
      Hashtbl.iter
        (fun key witness ->
          match Hashtbl.find_opt merged_bugs key with
          | Some old when old <= witness -> ()
          | _ -> Hashtbl.replace merged_bugs key witness)
        w.bug_tbl)
    workers;
  let bugs =
    Hashtbl.fold
      (fun (kind, fname) input acc ->
        { kind; input; at_function = fname } :: acc)
      merged_bugs []
    |> List.sort (fun a b ->
           match compare a.kind b.kind with
           | 0 -> (
               match compare a.at_function b.at_function with
               | 0 -> compare a.input b.input
               | c -> c)
           | c -> c)
  in
  (* degradations merge like every other verdict: group by (kind, where),
     sum affected paths, canonical sort *)
  let degradations =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun w ->
        List.iter
          (fun (k, where, n) ->
            let cur =
              match Hashtbl.find_opt tbl (k, where) with
              | Some c -> c
              | None -> 0
            in
            Hashtbl.replace tbl (k, where) (cur + n))
          w.degs)
      workers;
    Hashtbl.fold
      (fun (d_kind, d_where) d_paths acc -> { d_kind; d_where; d_paths } :: acc)
      tbl []
    |> List.sort compare
  in
  let faults_injected =
    match config.faults with Some f -> Fault.injected f | None -> []
  in
  let covered = Hashtbl.create 64 in
  List.iter
    (fun w ->
      Hashtbl.iter
        (fun k () -> Hashtbl.replace covered k ())
        w.gctx.Executor.covered)
    workers;
  let sum f = List.fold_left (fun acc w -> acc + f w) 0 workers in
  let sumf f = List.fold_left (fun acc w -> acc +. f w) 0.0 workers in
  let solver_stats w = Solver.stats w.gctx.Executor.solver in
  let worker_stats =
    List.map
      (fun w ->
        let s = solver_stats w in
        {
          w_instructions = w.gctx.Executor.insts_executed;
          w_forks = w.gctx.Executor.forks;
          w_queries = s.Solver.queries;
          w_cache_hits = s.Solver.cache_hits;
          w_solver_time = s.Solver.solver_time;
          w_components = s.Solver.components;
          w_component_solves = s.Solver.component_solves;
          w_hits_exact = s.Solver.hits_exact;
          w_hits_canon = s.Solver.hits_canon;
          w_hits_subset = s.Solver.hits_subset;
          w_hits_superset = s.Solver.hits_superset;
          w_hits_store = s.Solver.hits_store;
        })
      workers
  in
  (* close the per-worker spans with the very counters that define the
     result totals below, so per-span sums equal the engine's by
     construction (the attribution invariant, per-span edition) *)
  List.iter2
    (fun w ws ->
      match w.gctx.Executor.span with
      | Some sp ->
          Obs.Span.finish sp
            ~counters:
              [ ("instructions", float_of_int ws.w_instructions);
                ("forks", float_of_int ws.w_forks);
                ("queries", float_of_int ws.w_queries);
                ("cache_hits", float_of_int ws.w_cache_hits);
                ("solver_time", ws.w_solver_time);
                ("exits", float_of_int (List.length w.exits)) ]
      | None -> ())
    workers worker_stats;
  (* persist whatever this run contributed to the cross-run store (only
     if we opened it — a borrowed [config.store] is saved by its owner) *)
  (match own_store with
  | Some st -> Overify_solver.Store.save st
  | None -> ());
  (* per-layer solver counters through the metric registry (single-threaded
     here, after the join, so no cross-domain races on the cells) *)
  if Obs.enabled () then begin
    let flush name v =
      if v > 0 then Obs.Registry.add (Obs.Registry.counter name) v
    in
    flush "solver.components" (sum (fun w -> (solver_stats w).Solver.components));
    flush "solver.component_solves"
      (sum (fun w -> (solver_stats w).Solver.component_solves));
    flush "solver.hits.exact" (sum (fun w -> (solver_stats w).Solver.hits_exact));
    flush "solver.hits.canon" (sum (fun w -> (solver_stats w).Solver.hits_canon));
    flush "solver.hits.subset"
      (sum (fun w -> (solver_stats w).Solver.hits_subset));
    flush "solver.hits.superset"
      (sum (fun w -> (solver_stats w).Solver.hits_superset));
    flush "solver.hits.store" (sum (fun w -> (solver_stats w).Solver.hits_store));
    flush "summary.instantiated" (sum (fun w -> w.gctx.Executor.sum_hits));
    flush "summary.opaque" (sum (fun w -> w.gctx.Executor.sum_opaque));
    flush "summary.computed" summary_computed;
    flush "summary.cached" summary_cached;
    List.iter
      (fun d ->
        Obs.Registry.add
          (Obs.Registry.counter ~labels:[ ("kind", d.d_kind) ]
             "engine.degradations")
          (max 1 d.d_paths))
      degradations;
    List.iter
      (fun (k, n) ->
        if n > 0 then
          Obs.Registry.add
            (Obs.Registry.counter ~labels:[ ("kind", k) ] "fault.injected")
            n)
      faults_injected
  end;
  let profile =
    if not config.profile then None
    else begin
      let merged = Obs.Profile.create () in
      List.iter
        (fun w ->
          match w.gctx.Executor.prof with
          | Some p -> Obs.Profile.merge_into merged p
          | None -> ())
        workers;
      Some merged
    end
  in
  let complete = degradations = [] in
  let time = Unix.gettimeofday () -. t_start in
  (match eng_span with
  | Some sp ->
      (* degradations and fired faults become instant flight events on
         the request's trace — the post-mortem trail of a degraded run *)
      List.iter
        (fun d ->
          Obs.Span.event ~parent:sp
            ~args:
              [ ("kind", d.d_kind); ("where", d.d_where);
                ("paths", string_of_int d.d_paths) ]
            "degradation")
        degradations;
      List.iter
        (fun (k, n) ->
          if n > 0 then
            Obs.Span.event ~parent:sp
              ~args:[ ("kind", k); ("count", string_of_int n) ]
              "fault.injected")
        faults_injected;
      Obs.Span.finish sp
        ~counters:
          [ ("paths", float_of_int paths);
            ("instructions",
             float_of_int (sum (fun w -> w.gctx.Executor.insts_executed)));
            ("forks", float_of_int (sum (fun w -> w.gctx.Executor.forks)));
            ("queries",
             float_of_int (sum (fun w -> (solver_stats w).Solver.queries)));
            ("solver_time",
             sumf (fun w -> (solver_stats w).Solver.solver_time)) ]
  | None -> ());
  if Obs.Trace.enabled () then
    Obs.Trace.emit ~cat:"symex" ~name:"engine.run"
      ~args:
        [
          ("searcher",
           match config.searcher with
           | `Dfs -> "dfs"
           | `Bfs -> "bfs"
           | `Parallel j -> Printf.sprintf "parallel:%d" j);
          ("paths", string_of_int paths);
          ("complete", string_of_bool complete);
        ]
      ~ts:t_start ~dur:time ();
  {
    paths;
    bugs;
    instructions = sum (fun w -> w.gctx.Executor.insts_executed);
    forks = sum (fun w -> w.gctx.Executor.forks);
    queries = sum (fun w -> (solver_stats w).Solver.queries);
    cache_hits = sum (fun w -> (solver_stats w).Solver.cache_hits);
    solver_time = sumf (fun w -> (solver_stats w).Solver.solver_time);
    components = sum (fun w -> (solver_stats w).Solver.components);
    component_solves =
      sum (fun w -> (solver_stats w).Solver.component_solves);
    hits_exact = sum (fun w -> (solver_stats w).Solver.hits_exact);
    hits_canon = sum (fun w -> (solver_stats w).Solver.hits_canon);
    hits_subset = sum (fun w -> (solver_stats w).Solver.hits_subset);
    hits_superset = sum (fun w -> (solver_stats w).Solver.hits_superset);
    hits_store = sum (fun w -> (solver_stats w).Solver.hits_store);
    summary_instantiated = sum (fun w -> w.gctx.Executor.sum_hits);
    summary_opaque = sum (fun w -> w.gctx.Executor.sum_opaque);
    summary_computed;
    summary_cached;
    time;
    complete;
    degradations;
    faults_injected;
    resumed = snapshot <> None;
    exit_codes;
    blocks_covered = Hashtbl.length covered;
    blocks_total =
      (let reach = Hashtbl.create 16 in
       let rec visit name =
         if not (Hashtbl.mem reach name) then begin
           Hashtbl.replace reach name ();
           match Ir.find_func m name with
           | Some fn ->
               List.iter visit (Overify_ir.Callgraph.callees m fn)
           | None -> ()
         end
       in
       visit "main";
       List.fold_left
         (fun acc (f : Ir.func) ->
           if Hashtbl.mem reach f.Ir.fname then acc + Ir.num_blocks f else acc)
         0 m.Ir.funcs);
    jobs = njobs;
    worker_stats;
    profile;
  }

(* ---------------- structured JSON ---------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Machine-readable run result with a fixed key order (goldenable: the
    degraded-run JSON shape is asserted by test_obs).  [deterministic]
    zeroes everything that is not a verdict: wall-clock times,
    [cache_hits] (warm solver-store state, e.g. a cold one-shot CLI run
    versus a warm daemon — the serve-vs-CLI differential compares these
    documents byte-for-byte), the effort counters ([instructions],
    [forks], [queries]) and the summary counters, which legitimately
    differ between compositional and inline exploration while every
    verdict field is byte-identical (the summary-vs-inline differential
    relies on this). *)
let result_to_json ?(deterministic = false) (r : result) : string =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let det v = if deterministic then 0 else v in
  add "{";
  add "\"paths\": %d, " r.paths;
  add "\"instructions\": %d, " (det r.instructions);
  add "\"forks\": %d, " (det r.forks);
  add "\"queries\": %d, " (det r.queries);
  add "\"cache_hits\": %d, " (det r.cache_hits);
  add "\"summary_instantiated\": %d, " (det r.summary_instantiated);
  add "\"summary_opaque\": %d, " (det r.summary_opaque);
  add "\"summary_computed\": %d, " (det r.summary_computed);
  add "\"summary_cached\": %d, " (det r.summary_cached);
  add "\"time_ms\": %.1f, " (if deterministic then 0.0 else r.time *. 1000.0);
  add "\"solver_time_ms\": %.1f, "
    (if deterministic then 0.0 else r.solver_time *. 1000.0);
  add "\"blocks_covered\": %d, " r.blocks_covered;
  add "\"blocks_total\": %d, " r.blocks_total;
  add "\"jobs\": %d, " r.jobs;
  add "\"complete\": %b, " r.complete;
  add "\"resumed\": %b, " r.resumed;
  add "\"degradations\": [%s], "
    (String.concat ", "
       (List.map
          (fun d ->
            Printf.sprintf
              "{\"kind\": \"%s\", \"where\": \"%s\", \"paths\": %d}"
              (json_escape d.d_kind) (json_escape d.d_where) d.d_paths)
          r.degradations));
  add "\"faults_injected\": [%s], "
    (String.concat ", "
       (List.map
          (fun (k, n) -> Printf.sprintf "{\"kind\": \"%s\", \"count\": %d}" k n)
          r.faults_injected));
  add "\"bugs\": [%s]"
    (String.concat ", "
       (List.map
          (fun b ->
            Printf.sprintf
              "{\"kind\": \"%s\", \"function\": \"%s\", \"input\": \"%s\"}"
              (json_escape b.kind) (json_escape b.at_function)
              (json_escape b.input))
          r.bugs));
  add "}";
  Buffer.contents buf
