(** Top-level symbolic-execution engine: explores all paths of a module's
    [main] for a given symbolic input size, under time/path budgets, and
    reports the statistics the paper's evaluation uses (t_verify, number of
    paths, number of interpreted instructions, solver counters).

    Exploration runs either sequentially ([`Dfs]/[`Bfs]) or on [n] OCaml
    domains ([`Parallel n]) with a work-sharing scheduler: a lock-protected
    shared frontier of states, each worker owning a private solver/blast
    context, and global budgets enforced through atomics.  Results are
    deterministic modulo scheduling — for a run that completes exploration,
    [paths], [exit_codes], [bugs] and [blocks_covered] are canonically
    sorted/merged so that every searcher (and every worker count) reports
    byte-identical values. *)

module Ir = Overify_ir.Ir
module Bv = Overify_solver.Bv
module Solver = Overify_solver.Solver
module Obs = Overify_obs.Obs

type config = {
  input_size : int;
  max_paths : int;       (** stop after completing this many paths *)
  max_insts : int;       (** total dynamic instruction budget *)
  timeout : float;       (** wall-clock seconds *)
  check_bounds : bool;   (** fork out-of-bounds bug paths *)
  searcher : [ `Dfs | `Bfs | `Parallel of int ];
  profile : bool;        (** attribute cost per (function, block) *)
  solver_cache : bool option;
      (** enable the solver's reuse layers; [None] defers to the
          [OVERIFY_SOLVER_CACHE] environment variable (default on).
          Answers are identical either way — only hit counters move. *)
  cache_dir : string option;
      (** attach a persistent cross-run solver store in this directory,
          shared by all workers and saved when the run ends *)
}

let default_config =
  {
    input_size = 4;
    max_paths = 1_000_000;
    max_insts = 200_000_000;
    timeout = 60.0;
    check_bounds = true;
    searcher = `Dfs;
    profile = false;
    solver_cache = None;
    cache_dir = None;
  }

type bug = {
  kind : string;
  input : string;        (** concrete input reproducing the bug *)
  at_function : string;
}

type worker_stat = {
  w_instructions : int;
  w_forks : int;
  w_queries : int;
  w_cache_hits : int;
  w_solver_time : float;
  w_components : int;
  w_component_solves : int;
  w_hits_exact : int;
  w_hits_canon : int;
  w_hits_subset : int;
  w_hits_superset : int;
  w_hits_store : int;
}

type result = {
  paths : int;                  (** completed (exited) paths *)
  bugs : bug list;
  instructions : int;           (** dynamic instructions over all paths *)
  forks : int;
  queries : int;
  cache_hits : int;
  solver_time : float;
  components : int;             (** independent subproblems seen *)
  component_solves : int;       (** raw blast+SAT solver invocations *)
  hits_exact : int;             (** per-layer solver cache hits... *)
  hits_canon : int;
  hits_subset : int;
  hits_superset : int;
  hits_store : int;             (** ...all sums over workers *)
  time : float;                 (** total verification wall time *)
  complete : bool;              (** false if a budget was exhausted *)
  exit_codes : (string * int64) list;
      (** per completed path: concrete witness input and its exit code *)
  blocks_covered : int;  (** basic blocks reached on some explored path *)
  blocks_total : int;    (** blocks of the functions reachable from main *)
  jobs : int;            (** worker domains used (1 for `Dfs/`Bfs) *)
  worker_stats : worker_stat list;
      (** per-worker solver/executor counters, in worker order; the
          reported totals are by definition their sums *)
  profile : Obs.Profile.t option;
      (** per-(function, block) attribution, merged over workers; present
          iff [config.profile] was set *)
}

(** Extract a concrete input string from a state's model. *)
let input_of_model (input_vars : int array) model =
  String.init (Array.length input_vars) (fun i ->
      let v =
        match List.assoc_opt input_vars.(i) model with
        | Some v -> Int64.to_int (Int64.logand v 0xFFL)
        | None -> 0
      in
      Char.chr v)

(* ---------------- per-worker accumulation ---------------- *)

(** Everything one worker (or the single sequential explorer) accumulates.
    Workers never share mutable state: the executor context (with its solver
    context, coverage table and counters) and the result lists are private,
    merged deterministically after the join. *)
type worker = {
  gctx : Executor.gctx;
  mutable exits : (string * int64) list;   (** (witness, exit code), unordered *)
  bug_tbl : (string * string, string) Hashtbl.t;
      (** (kind, function) -> smallest witness input seen *)
  mutable dropped : bool;    (** some path was abandoned (T_drop) *)
  mutable errored : bool;
}

let record_exit w input_vars (st : State.t) code =
  (match w.gctx.Executor.prof with
  | Some p ->
      (* the path completed at main's returning block *)
      let fr = State.top st in
      let cell =
        Obs.Profile.site p ~fn:fr.State.fn.Ir.fname ~block:fr.State.cur_block
      in
      cell.Obs.Profile.s_paths <- cell.Obs.Profile.s_paths + 1
  | None -> ());
  let witness = input_of_model input_vars st.State.model in
  let code_v =
    match code with
    | Some t ->
        Bv.to_signed 32
          (Bv.eval
             (fun id ->
               match List.assoc_opt id st.State.model with
               | Some v -> v
               | None -> 0L)
             t)
    | None -> 0L
  in
  w.exits <- (witness, code_v) :: w.exits

(** Deduplicate by (kind, function) but keep the lexicographically smallest
    witness: every occurrence of a bug is still enumerated, so the kept
    witness is independent of exploration order — the determinism contract
    extends to [bugs]. *)
let record_bug w input_vars (st : State.t) kind =
  let fname = (State.top st).State.fn.Ir.fname in
  let witness = input_of_model input_vars st.State.model in
  match Hashtbl.find_opt w.bug_tbl (kind, fname) with
  | Some old when old <= witness -> ()
  | _ -> Hashtbl.replace w.bug_tbl (kind, fname) witness

let record_error w msg =
  w.errored <- true;
  Hashtbl.replace w.bug_tbl ("executor error: " ^ msg, "?") ""

(* ---------------- sequential exploration ---------------- *)

(** Classic single-worklist loop, DFS (stack) or BFS (queue).
    Returns (completed paths, complete?). *)
let run_sequential config (w : worker) init_state deadline input_vars :
    int * bool =
  let gctx = w.gctx in
  let stack = ref [] in
  let queue = Queue.create () in
  let push st =
    match config.searcher with
    | `Bfs -> Queue.add st queue
    | _ -> stack := st :: !stack
  in
  let pop () =
    match config.searcher with
    | `Bfs -> Queue.take_opt queue
    | _ -> (
        match !stack with
        | st :: rest ->
            stack := rest;
            Some st
        | [] -> None)
  in
  push init_state;
  let paths = ref 0 in
  let complete = ref true in
  let out_of_budget () =
    !paths >= config.max_paths
    || gctx.Executor.insts_executed >= config.max_insts
    || Unix.gettimeofday () > deadline
  in
  let check_counter = ref 0 in
  (try
     let rec loop () =
       match pop () with
       | None -> ()
       | Some st ->
           (* run this state until it forks or finishes *)
           let rec advance st =
             incr check_counter;
             if !check_counter land 2047 = 0 && out_of_budget () then begin
               complete := false;
               raise Exit
             end;
             match Executor.step gctx st with
             | [ Executor.T_cont st' ] -> advance st'
             | transitions ->
                 List.iter
                   (fun tr ->
                     match tr with
                     | Executor.T_cont st' -> push st'
                     | Executor.T_exit (st', code) ->
                         incr paths;
                         record_exit w input_vars st' code;
                         if out_of_budget () then begin
                           complete := false;
                           raise Exit
                         end
                     | Executor.T_drop (_, _) ->
                         w.dropped <- true;
                         complete := false
                     | Executor.T_bug (st', kind) ->
                         record_bug w input_vars st' kind)
                   transitions
           in
           advance st;
           loop ()
     in
     loop ()
   with
  | Exit -> ()
  | Solver.Timeout -> complete := false
  | Executor.Symex_error msg ->
      complete := false;
      record_error w msg);
  (* anything left on the worklist means incompleteness *)
  (match config.searcher with
  | `Bfs -> if not (Queue.is_empty queue) then complete := false
  | _ -> if !stack <> [] then complete := false);
  (!paths, !complete)

(* ---------------- parallel exploration ---------------- *)

exception Halt
(** Raised inside a worker to abandon its current state chain after a global
    stop (budget exhausted or another worker failed). *)

(** Work-sharing scheduler over [n] domains.  The frontier is a shared
    queue under one mutex; a worker drives each popped state depth-first,
    keeps the first continuation of every fork for itself and publishes the
    rest.  [active] counts workers currently driving a state, so the
    termination condition (empty frontier and nobody active) is detected
    without polling.  Budgets are global: completed paths and executed
    instructions are aggregated in atomics, and any worker tripping a limit
    sets [stop] for everyone. *)
let run_parallel config n (workers : worker list) init_state deadline
    input_vars : int * bool =
  let mutex = Mutex.create () in
  let wakeup = Condition.create () in
  let frontier = Queue.create () in
  let active = ref 0 in
  let stop = Atomic.make false in
  let paths = Atomic.make 0 in
  let insts = Atomic.make 0 in
  Queue.add init_state frontier;
  let halt () =
    Atomic.set stop true;
    Mutex.lock mutex;
    Condition.broadcast wakeup;
    Mutex.unlock mutex
  in
  let out_of_budget () =
    Atomic.get paths >= config.max_paths
    || Atomic.get insts >= config.max_insts
    || Unix.gettimeofday () > deadline
  in
  let worker_loop (w : worker) =
    let gctx = w.gctx in
    (* instruction counts are flushed to the shared atomic in batches so the
       global budget is enforced without per-step contention *)
    let flushed = ref 0 in
    let flush_insts () =
      let d = gctx.Executor.insts_executed - !flushed in
      if d > 0 then begin
        ignore (Atomic.fetch_and_add insts d);
        flushed := gctx.Executor.insts_executed
      end
    in
    let check_counter = ref 0 in
    let pop () =
      Mutex.lock mutex;
      let rec go () =
        if Atomic.get stop then None
        else
          match Queue.take_opt frontier with
          | Some st ->
              incr active;
              Some st
          | None ->
              if !active = 0 then begin
                (* global quiescence: every path fully explored *)
                Condition.broadcast wakeup;
                None
              end
              else begin
                Condition.wait wakeup mutex;
                go ()
              end
      in
      let r = go () in
      Mutex.unlock mutex;
      r
    in
    let publish sts =
      if sts <> [] then begin
        Mutex.lock mutex;
        List.iter (fun st -> Queue.add st frontier) sts;
        Condition.broadcast wakeup;
        Mutex.unlock mutex
      end
    in
    let retire () =
      Mutex.lock mutex;
      decr active;
      if !active = 0 && Queue.is_empty frontier then Condition.broadcast wakeup;
      Mutex.unlock mutex
    in
    let rec advance st =
      incr check_counter;
      if !check_counter land 255 = 0 then begin
        flush_insts ();
        if Atomic.get stop then raise Halt;
        if out_of_budget () then begin
          halt ();
          raise Halt
        end
      end;
      match Executor.step gctx st with
      | [ Executor.T_cont st' ] -> advance st'
      | transitions ->
          let conts = ref [] in
          List.iter
            (fun tr ->
              match tr with
              | Executor.T_cont st' -> conts := st' :: !conts
              | Executor.T_exit (st', code) ->
                  ignore (Atomic.fetch_and_add paths 1);
                  record_exit w input_vars st' code;
                  if out_of_budget () then begin
                    halt ();
                    raise Halt
                  end
              | Executor.T_drop (_, _) -> w.dropped <- true
              | Executor.T_bug (st', kind) -> record_bug w input_vars st' kind)
            transitions;
          (* continue with the first fork child; share the rest *)
          (match List.rev !conts with
          | [] -> ()
          | first :: rest ->
              publish rest;
              advance first)
    in
    let rec work () =
      match pop () with
      | None -> ()
      | Some st ->
          (try advance st with
          | Halt -> ()
          | Solver.Timeout -> halt ()
          | Executor.Symex_error msg ->
              record_error w msg;
              halt ());
          flush_insts ();
          retire ();
          work ()
    in
    work ()
  in
  let spawned =
    List.map (fun w -> Domain.spawn (fun () -> worker_loop w)) (List.tl workers)
  in
  worker_loop (List.hd workers);
  List.iter Domain.join spawned;
  let complete =
    (not (Atomic.get stop))
    && Queue.is_empty frontier
    && not (List.exists (fun w -> w.dropped || w.errored) workers)
  in
  ignore n;
  (Atomic.get paths, complete)

(* ---------------- driver ---------------- *)

let run ?(config = default_config) (m : Ir.modul) : result =
  (* each run is self-contained: drop hash-consed terms; solver caches are
     per-worker and freshly created below *)
  Bv.reset ();
  let t_start = Unix.gettimeofday () in
  let deadline = t_start +. config.timeout in
  (* globals *)
  let mem = ref Memory.empty in
  let globals =
    List.map
      (fun (g : Ir.global) ->
        let (m', obj) =
          Memory.alloc_bytes ~writable:(not g.Ir.gconst) !mem g.Ir.ginit
            ~size:g.Ir.gsize
        in
        mem := m';
        (g.Ir.gname, obj))
      m.Ir.globals
  in
  (* fresh symbolic variables for the input bytes *)
  let input_vars =
    Array.init config.input_size (fun i -> 1_000_000 + (config.input_size * 7919) + i)
  in
  let main =
    match Ir.find_func m "main" with
    | Some f -> f
    | None -> invalid_arg "Engine.run: module has no main"
  in
  let entry = Ir.entry main in
  let init_state =
    {
      State.frames =
        [
          {
            State.fn = main;
            regs = State.IMap.empty;
            cur_block = entry.Ir.bid;
            prev_block = -1;
            insts = entry.Ir.insts;
            ret_dst = None;
            frame_objs = [];
          };
        ];
      mem = !mem;
      path = [];
      model = [];
      out_rev = [];
      steps = 0;
    }
  in
  let njobs =
    match config.searcher with
    | `Parallel j ->
        if j < 1 then invalid_arg "Engine.run: `Parallel needs >= 1 worker";
        j
    | `Dfs | `Bfs -> 1
  in
  (* one persistent store for the whole run, shared by every worker (it
     locks internally); saved after the join *)
  let store =
    Option.map
      (fun dir -> Overify_solver.Store.load ~dir)
      config.cache_dir
  in
  let make_worker () =
    let prof = if config.profile then Some (Obs.Profile.create ()) else None in
    let solver =
      Solver.create ~deadline
        ?hist:(Option.map (fun p -> p.Obs.Profile.qhist) prof)
        ?cache:config.solver_cache ?store ()
    in
    let gctx =
      {
        Executor.modul = m;
        block_tbls = Hashtbl.create 16;
        globals;
        input_vars;
        check_bounds = config.check_bounds;
        solver;
        insts_executed = 0;
        forks = 0;
        covered = Hashtbl.create 64;
        prof;
      }
    in
    Hashtbl.replace gctx.Executor.covered (main.Ir.fname, entry.Ir.bid) ();
    {
      gctx;
      exits = [];
      bug_tbl = Hashtbl.create 8;
      dropped = false;
      errored = false;
    }
  in
  let workers = List.init njobs (fun _ -> make_worker ()) in
  let (paths, complete) =
    match config.searcher with
    | `Dfs | `Bfs ->
        run_sequential config (List.hd workers) init_state deadline input_vars
    | `Parallel j ->
        run_parallel config j workers init_state deadline input_vars
  in
  (* ---- deterministic merge: canonical order for everything a completed
     exploration reports, so `Dfs, `Bfs and `Parallel n agree exactly ---- *)
  let exit_codes =
    List.sort compare (List.concat_map (fun w -> w.exits) workers)
  in
  let merged_bugs = Hashtbl.create 16 in
  List.iter
    (fun w ->
      Hashtbl.iter
        (fun key witness ->
          match Hashtbl.find_opt merged_bugs key with
          | Some old when old <= witness -> ()
          | _ -> Hashtbl.replace merged_bugs key witness)
        w.bug_tbl)
    workers;
  let bugs =
    Hashtbl.fold
      (fun (kind, fname) input acc ->
        { kind; input; at_function = fname } :: acc)
      merged_bugs []
    |> List.sort (fun a b ->
           match compare a.kind b.kind with
           | 0 -> (
               match compare a.at_function b.at_function with
               | 0 -> compare a.input b.input
               | c -> c)
           | c -> c)
  in
  let covered = Hashtbl.create 64 in
  List.iter
    (fun w ->
      Hashtbl.iter
        (fun k () -> Hashtbl.replace covered k ())
        w.gctx.Executor.covered)
    workers;
  let sum f = List.fold_left (fun acc w -> acc + f w) 0 workers in
  let sumf f = List.fold_left (fun acc w -> acc +. f w) 0.0 workers in
  let solver_stats w = Solver.stats w.gctx.Executor.solver in
  let worker_stats =
    List.map
      (fun w ->
        let s = solver_stats w in
        {
          w_instructions = w.gctx.Executor.insts_executed;
          w_forks = w.gctx.Executor.forks;
          w_queries = s.Solver.queries;
          w_cache_hits = s.Solver.cache_hits;
          w_solver_time = s.Solver.solver_time;
          w_components = s.Solver.components;
          w_component_solves = s.Solver.component_solves;
          w_hits_exact = s.Solver.hits_exact;
          w_hits_canon = s.Solver.hits_canon;
          w_hits_subset = s.Solver.hits_subset;
          w_hits_superset = s.Solver.hits_superset;
          w_hits_store = s.Solver.hits_store;
        })
      workers
  in
  (* persist whatever this run contributed to the cross-run store *)
  (match store with
  | Some st -> Overify_solver.Store.save st
  | None -> ());
  (* per-layer solver counters through the metric registry (single-threaded
     here, after the join, so no cross-domain races on the cells) *)
  if Obs.enabled () then begin
    let flush name v =
      if v > 0 then Obs.Registry.add (Obs.Registry.counter name) v
    in
    flush "solver.components" (sum (fun w -> (solver_stats w).Solver.components));
    flush "solver.component_solves"
      (sum (fun w -> (solver_stats w).Solver.component_solves));
    flush "solver.hits.exact" (sum (fun w -> (solver_stats w).Solver.hits_exact));
    flush "solver.hits.canon" (sum (fun w -> (solver_stats w).Solver.hits_canon));
    flush "solver.hits.subset"
      (sum (fun w -> (solver_stats w).Solver.hits_subset));
    flush "solver.hits.superset"
      (sum (fun w -> (solver_stats w).Solver.hits_superset));
    flush "solver.hits.store" (sum (fun w -> (solver_stats w).Solver.hits_store))
  end;
  let profile =
    if not config.profile then None
    else begin
      let merged = Obs.Profile.create () in
      List.iter
        (fun w ->
          match w.gctx.Executor.prof with
          | Some p -> Obs.Profile.merge_into merged p
          | None -> ())
        workers;
      Some merged
    end
  in
  let time = Unix.gettimeofday () -. t_start in
  if Obs.Trace.enabled () then
    Obs.Trace.emit ~cat:"symex" ~name:"engine.run"
      ~args:
        [
          ("searcher",
           match config.searcher with
           | `Dfs -> "dfs"
           | `Bfs -> "bfs"
           | `Parallel j -> Printf.sprintf "parallel:%d" j);
          ("paths", string_of_int paths);
          ("complete", string_of_bool complete);
        ]
      ~ts:t_start ~dur:time ();
  {
    paths;
    bugs;
    instructions = sum (fun w -> w.gctx.Executor.insts_executed);
    forks = sum (fun w -> w.gctx.Executor.forks);
    queries = sum (fun w -> (solver_stats w).Solver.queries);
    cache_hits = sum (fun w -> (solver_stats w).Solver.cache_hits);
    solver_time = sumf (fun w -> (solver_stats w).Solver.solver_time);
    components = sum (fun w -> (solver_stats w).Solver.components);
    component_solves =
      sum (fun w -> (solver_stats w).Solver.component_solves);
    hits_exact = sum (fun w -> (solver_stats w).Solver.hits_exact);
    hits_canon = sum (fun w -> (solver_stats w).Solver.hits_canon);
    hits_subset = sum (fun w -> (solver_stats w).Solver.hits_subset);
    hits_superset = sum (fun w -> (solver_stats w).Solver.hits_superset);
    hits_store = sum (fun w -> (solver_stats w).Solver.hits_store);
    time;
    complete;
    exit_codes;
    blocks_covered = Hashtbl.length covered;
    blocks_total =
      (let reach = Hashtbl.create 16 in
       let rec visit name =
         if not (Hashtbl.mem reach name) then begin
           Hashtbl.replace reach name ();
           match Ir.find_func m name with
           | Some fn ->
               List.iter visit (Overify_ir.Callgraph.callees m fn)
           | None -> ()
         end
       in
       visit "main";
       List.fold_left
         (fun acc (f : Ir.func) ->
           if Hashtbl.mem reach f.Ir.fname then acc + Ir.num_blocks f else acc)
         0 m.Ir.funcs);
    jobs = njobs;
    worker_stats;
    profile;
  }
