(** Call graph over direct calls, used to order inlining bottom-up. *)

module StrSet = Set.Make (String)

(** Callees of [fn] that are defined in the module (intrinsics and unknown
    externals excluded), without duplicates, in first-call order. *)
let callees (m : Ir.modul) (fn : Ir.func) : string list =
  let defined = List.map (fun (f : Ir.func) -> f.Ir.fname) m.funcs in
  let seen = ref StrSet.empty in
  let out = ref [] in
  Ir.iter_insts
    (fun _ inst ->
      match inst with
      | Ir.Call (_, _, callee, _)
        when List.mem callee defined && not (StrSet.mem callee !seen) ->
          seen := StrSet.add callee !seen;
          out := callee :: !out
      | _ -> ())
    fn;
  List.rev !out

(** Is [name] on a call-graph cycle (including direct recursion)?  True when
    [name] is reachable from one of its own callees. *)
let in_cycle (m : Ir.modul) (name : string) : bool =
  match Ir.find_func m name with
  | None -> false
  | Some f ->
      let visited = ref StrSet.empty in
      let rec reaches cur =
        cur = name
        || (not (StrSet.mem cur !visited)
           && begin
                visited := StrSet.add cur !visited;
                match Ir.find_func m cur with
                | None -> false
                | Some cf -> List.exists reaches (callees m cf)
              end)
      in
      List.exists reaches (callees m f)

(** Strongly connected components of the call graph (Tarjan), returned in
    reverse topological order: every callee's SCC appears before any caller's.
    Singleton SCCs without a self-call are acyclic; everything else is a
    genuine cycle (direct or mutual recursion). *)
let sccs (m : Ir.modul) : string list list =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let next = ref 0 in
  let out = ref [] in
  let rec strongconnect name =
    Hashtbl.replace index name !next;
    Hashtbl.replace lowlink name !next;
    incr next;
    stack := name :: !stack;
    Hashtbl.replace on_stack name true;
    (match Ir.find_func m name with
    | None -> ()
    | Some f ->
        List.iter
          (fun callee ->
            if not (Hashtbl.mem index callee) then begin
              strongconnect callee;
              Hashtbl.replace lowlink name
                (min (Hashtbl.find lowlink name) (Hashtbl.find lowlink callee))
            end
            else if Hashtbl.mem on_stack callee then
              Hashtbl.replace lowlink name
                (min (Hashtbl.find lowlink name) (Hashtbl.find index callee)))
          (callees m f));
    if Hashtbl.find lowlink name = Hashtbl.find index name then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | hd :: tl ->
            stack := tl;
            Hashtbl.remove on_stack hd;
            if hd = name then hd :: acc else pop (hd :: acc)
      in
      out := pop [] :: !out
    end
  in
  List.iter
    (fun (f : Ir.func) -> if not (Hashtbl.mem index f.Ir.fname) then strongconnect f.Ir.fname)
    m.funcs;
  List.rev !out

(** Names of functions lying on any call-graph cycle: members of non-singleton
    SCCs plus directly self-recursive singletons. *)
let cyclic (m : Ir.modul) : StrSet.t =
  List.fold_left
    (fun acc scc ->
      match scc with
      | [ n ] ->
          let self =
            match Ir.find_func m n with
            | Some f -> List.mem n (callees m f)
            | None -> false
          in
          if self then StrSet.add n acc else acc
      | ns -> List.fold_left (fun a n -> StrSet.add n a) acc ns)
    StrSet.empty (sccs m)

(** Function names ordered so that callees come before callers (cycles broken
    arbitrarily); the order used by the inliner. *)
let bottom_up_order (m : Ir.modul) : string list =
  let visited = ref StrSet.empty in
  let order = ref [] in
  let rec go name =
    if not (StrSet.mem name !visited) then begin
      visited := StrSet.add name !visited;
      (match Ir.find_func m name with
      | Some f -> List.iter go (callees m f)
      | None -> ());
      order := name :: !order
    end
  in
  List.iter (fun (f : Ir.func) -> go f.Ir.fname) m.funcs;
  List.rev !order
