(** Structured, leveled daemon logging: one JSONL line per event on
    stderr, carrying the request's trace id so log lines join the span
    tree and the response envelope.

    Format: [{"ts": <unix seconds>, "level": "...", "event": "...",
    "trace": "rq-...", <extra string fields>}] — machine-greppable, no
    ad-hoc prints.

    The threshold comes from [OVERIFY_LOG] ([debug] | [info] | [warn],
    default [warn]); {!set_level} (the daemon's [--log] flag) overrides
    it — flag beats environment, same precedence rule as the [--obs] /
    [OVERIFY_OBS] pair.

    Warnings are additionally appended to the in-memory
    {!Overify_obs.Obs.Flight} ring (as [kind = "log"] records) whatever
    the stderr threshold, so a post-mortem flight record carries the
    daemon's recent complaints next to its spans. *)

type level = Debug | Info | Warn

val level_name : level -> string

val level_of_name : string -> level option
(** Accepts ["debug"], ["info"], ["warn"]/["warning"] (any case). *)

val set_level : level -> unit
val level : unit -> level

val enabled : level -> bool
(** Would a line at this level reach stderr? *)

val debug : ?trace:string -> string -> (string * string) list -> unit
val info : ?trace:string -> string -> (string * string) list -> unit
val warn : ?trace:string -> string -> (string * string) list -> unit
(** [info ~trace event fields] emits one JSONL line.  [event] is a
    stable dotted name (["daemon.start"], ["request.done"],
    ["flight.dump"]); [fields] are extra string key/values. *)
