(** Wire protocol of the verification service ([overify serve]).

    {2 Framing}

    Each message (request or response) travels as one {!Overify_solver.Binfile}
    frame: magic string, 4-byte big-endian version, 8-byte big-endian
    payload length, payload bytes, 16-byte MD5 digest of the payload —
    the same discipline as the solver store and the engine checkpoints,
    so a truncated or bit-flipped frame is detected, never misparsed.
    {!read_frame} additionally rejects frames whose declared length
    exceeds [max_frame] {e before} reading the payload, so an adversarial
    length field cannot make the daemon allocate unboundedly.

    {2 Payloads}

    The payload is one JSON document.  Requests are parsed with {!Json};
    responses are emitted with a fixed key order (goldenable — see
    DESIGN.md "Service architecture"):

    {v
      {"id": .., "status": "ok"|"error", "kind": .., "dedup":
       "miss"|"inflight"|"recent"|"none", "trace": .., "elapsed_ms": ..,
       "error": null|{"kind": .., "message": ..[, "retry_after_ms": ..]},
       "result": .., "obs": [..]}
    v}

    The [retry_after_ms] member appears only on errors that carry a
    backoff hint (the [overloaded] shed): a machine-readable pacing
    suggestion derived from the daemon's live per-kind latency
    histograms and current queue depth.

    The [result] of a [verify] request is byte-for-byte the document
    [Engine.result_to_json] produces, so the daemon and the one-shot CLI
    can be differentially tested. *)

type kind = Verify | Compile | Tv | Stats | Metrics | Shutdown

val kind_name : kind -> string
val kind_of_name : string -> kind option

type request = {
  rq_id : int;              (** echoed in the response; not part of dedup *)
  rq_kind : kind;
  rq_program : string;      (** corpus program name; [""] = use [rq_source] *)
  rq_source : string;       (** inline MiniC source *)
  rq_level : string;        (** optimization level name, e.g. ["O0"] *)
  rq_input_size : int;
  rq_timeout : float;
  rq_jobs : int;            (** worker domains for this request's engine run *)
  rq_link_libc : bool;
  rq_deterministic : bool;  (** zero wall-clock (and reuse-dependent) fields *)
  rq_faults : string;       (** fault-injection spec ([Fault.parse]); [""] = none *)
  rq_summaries : bool;
      (** compositional mode: instantiate cached function summaries at
          call sites ([Engine.config.summaries]).  The daemon's warm
          shared store makes summaries cross-request: a later request for
          an edited program reuses every summary outside the edit's
          callgraph cone. *)
  rq_format : string;
      (** result encoding for [Metrics] requests: [""]/["json"] = the
          structured metrics document, ["prometheus"] = a JSON string
          holding Prometheus text exposition.  Ignored by other kinds. *)
}

val default_request : request
(** [Verify], no program, level OVERIFY, 4 bytes, 30 s, 1 job. *)

val request_to_json : request -> string
(** Fixed key order; [request_of_json] inverts it exactly. *)

val request_of_json : Json.t -> (request, string) result
(** Validates kinds, field types and rejects unknown keys — a structured
    [bad_request] error, never an exception. *)

val fingerprint : request -> string
(** Dedup key: digest of every semantic field (everything but [rq_id]).
    Two requests with equal fingerprints receive byte-identical response
    bodies. *)

(** {2 Framing} *)

val magic : string
val version : int

val max_frame : int
(** Default frame-size cap (bytes) for {!read_frame}. *)

type frame_error =
  | Closed          (** clean EOF before any byte of a frame *)
  | Truncated       (** EOF mid-frame *)
  | Bad_magic
  | Bad_version
  | Oversized of int  (** declared payload length exceeded the cap *)
  | Corrupt         (** length/digest validation failed *)
  | Timed_out
      (** a slow peer stalled mid-frame past [frame_timeout] (the
          slowloris defence; answered as [bad_frame:timeout]) *)
  | Idle
      (** no frame began within [idle_timeout] — a quiet keep-alive
          connection the reaper may close without an answer *)

val frame_error_name : frame_error -> string

val write_frame : Unix.file_descr -> string -> bool
(** Frame and send a payload; [false] on any write failure (peer gone). *)

val read_frame :
  ?max:int ->
  ?idle_timeout:float ->
  ?frame_timeout:float ->
  Unix.file_descr ->
  (string, frame_error) result
(** Read and validate one frame.  Never raises; socket errors map to
    [Closed]/[Truncated].  [idle_timeout] (relative seconds) bounds the
    wait for the frame's first bytes — expiry is [Idle]; [frame_timeout]
    bounds the remainder once the magic has arrived — expiry is
    [Timed_out].  Omitted timeouts (the default, and what {!Client}
    uses) block indefinitely as before. *)

(** {2 Response envelope} *)

type body = {
  b_status : string;                   (** ["ok"] or ["error"] *)
  b_kind : string;                     (** request kind name *)
  b_error : (string * string) option;  (** (kind, message) when status=error *)
  b_retry_after_ms : int option;
      (** backoff hint emitted inside the error object (overload sheds) *)
  b_result : string;                   (** raw JSON value text; ["null"] if none *)
  b_obs : string;                      (** raw JSON array of per-request metric deltas *)
}

val ok_body : kind:string -> result:string -> ?obs:string -> unit -> body

val error_body : kind:string -> err:string -> msg:string -> body
(** [b_retry_after_ms] defaults to [None]; the overload shed sets it with
    a record update. *)

val response :
  id:int -> dedup:string -> ?trace:string -> elapsed_ms:float -> body -> string
(** The fixed-key-order envelope documented above.  [trace] is the
    request's trace id (fingerprint-derived, so dedup'd duplicates share
    it and byte-compare equal); [""] for control ops. *)

val extract_field : string -> string -> string option
(** [extract_field json key] returns the raw bytes of a top-level field's
    value (balanced-delimiter scan; understands strings/escapes).  Used to
    pull the embedded [result] document out of a response for byte-exact
    comparison without reparsing/reprinting. *)
