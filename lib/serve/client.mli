(** Client side of the serve protocol: a blocking connection to an
    [overify serve] daemon.  One request in flight per connection; open
    several connections for concurrency (the trace-replay harness does). *)

type t

val connect : string -> t
(** Connect to the daemon's Unix socket.  Raises [Unix.Unix_error] if the
    daemon is not listening. *)

val close : t -> unit
(** Idempotent. *)

val rpc : t -> Protocol.request -> (string, Protocol.frame_error) result
(** Send one request and block for its response payload (the raw JSON
    envelope text).  [Error] means the transport failed, not that the
    request failed — request-level failures come back as a structured
    [status = "error"] envelope. *)

val send_payload : t -> string -> bool
(** Frame and send arbitrary payload bytes (e.g. invalid JSON) — for
    protocol testing. *)

val send_bytes : t -> string -> bool
(** Send raw bytes with {e no} framing (garbage, truncated or corrupt
    frames) — for protocol testing. *)

val read_response : t -> (string, Protocol.frame_error) result
(** Block for one response frame. *)
