(** Client side of the serve protocol: a blocking connection to an
    [overify serve] daemon.  One request in flight per connection; open
    several connections for concurrency (the trace-replay harness does). *)

type t

val connect : string -> t
(** Connect to the daemon's Unix socket.  Raises [Unix.Unix_error] if the
    daemon is not listening. *)

val close : t -> unit
(** Idempotent. *)

val rpc : t -> Protocol.request -> (string, Protocol.frame_error) result
(** Send one request and block for its response payload (the raw JSON
    envelope text).  [Error] means the transport failed, not that the
    request failed — request-level failures come back as a structured
    [status = "error"] envelope. *)

val send_payload : t -> string -> bool
(** Frame and send arbitrary payload bytes (e.g. invalid JSON) — for
    protocol testing. *)

val send_bytes : t -> string -> bool
(** Send raw bytes with {e no} framing (garbage, truncated or corrupt
    frames) — for protocol testing. *)

val read_response : t -> (string, Protocol.frame_error) result
(** Block for one response frame. *)

val rpc_retry :
  socket:string ->
  ?retries:int ->
  ?backoff_ms:int ->
  Protocol.request ->
  (string, string) result
(** One-shot request with client-side retry (what [overify client
    --retries/--backoff] uses): a {e fresh} connection per attempt,
    retrying on connect failure (daemon not up yet), transport errors
    and [overloaded] sheds.  Between attempts sleeps a jittered
    exponential backoff ([backoff_ms] × 2{^attempt} × U[0.5,1.5), capped
    at 10 s); an [overloaded] envelope's [retry_after_ms] hint acts as a
    floor on the sleep, so the client never hammers a shedding daemon
    faster than it asked.  [retries] (default 0 — a single attempt, no
    retry) bounds {e additional} attempts.  [Ok] is the final envelope
    text (which may still be a non-retryable [status = "error"]);
    [Error] is a human-readable transport description after the last
    attempt failed. *)
