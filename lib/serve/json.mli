(** Minimal JSON for the serve protocol.

    The toolchain *emits* JSON everywhere by hand (fixed key order,
    goldenable); the daemon is the first component that must also *parse*
    it — requests arrive as JSON payloads inside {!Protocol} frames.  This
    is a small recursive-descent parser over the byte string plus the
    matching printer; it round-trips every document the client encoder
    produces (strings are raw bytes, control characters escaped as
    [\u00XX], exactly the discipline of [Engine.json_escape]). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** key order preserved *)

val parse : string -> (t, string) result
(** Parse one JSON document; trailing non-whitespace is an error.  Error
    messages carry the byte offset. *)

val to_string : t -> string
(** Print compactly, object keys in list order. *)

val escape : string -> string
(** Escape a raw byte string for embedding between quotes: quote,
    backslash, and control characters (as [\uXXXX]); bytes >= 0x80 pass
    through. *)

(* Accessors ([None] on shape mismatch). *)

val mem : t -> string -> t option
val str : t -> string option
val num : t -> float option
val int_ : t -> int option
val bool_ : t -> bool option
