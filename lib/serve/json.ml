(** Minimal JSON parser/printer for the serve protocol.  See json.mli. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------------- printing ---------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_string (v : t) : string =
  match v with
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f ->
      (* integers print without a fractional part, like the hand emitters *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%.17g" f
  | Str s -> "\"" ^ escape s ^ "\""
  | Arr xs -> "[" ^ String.concat ", " (List.map to_string xs) ^ "]"
  | Obj kvs ->
      "{"
      ^ String.concat ", "
          (List.map (fun (k, v) -> "\"" ^ escape k ^ "\": " ^ to_string v) kvs)
      ^ "}"

(* ---------------- parsing ---------------- *)

exception Bad of int * string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (!pos, msg)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for i = !pos to !pos + 3 do
      let d =
        match s.[i] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad \\u escape"
      in
      v := (!v * 16) + d
    done;
    pos := !pos + 4;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              let v = hex4 () in
              if v < 0x100 then Buffer.add_char buf (Char.chr v)
              else begin
                (* non-byte code point: encode as UTF-8 *)
                Buffer.add_char buf (Char.chr (0xe0 lor (v lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((v lsr 6) land 0x3f)));
                Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3f)))
              end
          | _ -> fail "bad escape");
          go ())
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let seen = ref false in
      let rec go () =
        match peek () with
        | Some ('0' .. '9') ->
            seen := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if not !seen then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let kvs = ref [] in
          let rec go () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            kvs := (k, v) :: !kvs;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          go ();
          Obj (List.rev !kvs)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let xs = ref [] in
          let rec go () =
            let v = parse_value () in
            xs := v :: !xs;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          go ();
          Arr (List.rev !xs)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing bytes at offset %d" !pos)
    else Ok v
  with
  | Bad (off, msg) -> Error (Printf.sprintf "%s at offset %d" msg off)
  | Stack_overflow -> Error "document nests too deeply"

(* ---------------- accessors ---------------- *)

let mem v k =
  match v with Obj kvs -> List.assoc_opt k kvs | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None

let int_ = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let bool_ = function Bool b -> Some b | _ -> None
