(** Flight-recorder persistence.  See flight.mli. *)

module Obs = Overify_obs.Obs
module Binfile = Overify_solver.Binfile

let magic = "OVERIFY-FLIGHT"
let version = 1

type dump = {
  fd_reason : string;
  fd_trace : string;
  fd_dumped_at : float;
  fd_dropped : int;
  fd_records : Obs.Flight.record list;
}

let record_to_json (r : Obs.Flight.record) : string =
  let counters =
    String.concat ", "
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\": %.9g" (Json.escape k) v)
         r.Obs.Flight.fr_counters)
  in
  let args =
    String.concat ", "
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\": \"%s\"" (Json.escape k) (Json.escape v))
         r.Obs.Flight.fr_args)
  in
  Printf.sprintf
    "{\"ts\": %.6f, \"dur\": %.6f, \"trace\": \"%s\", \"span\": %d, \
     \"parent\": %d, \"kind\": \"%s\", \"label\": \"%s\", \"counters\": \
     {%s}, \"args\": {%s}}"
    r.Obs.Flight.fr_ts r.Obs.Flight.fr_dur
    (Json.escape r.Obs.Flight.fr_trace)
    r.Obs.Flight.fr_id r.Obs.Flight.fr_parent
    (Json.escape r.Obs.Flight.fr_kind)
    (Json.escape r.Obs.Flight.fr_label)
    counters args

let record_of_json (j : Json.t) : (Obs.Flight.record, string) result =
  let str k =
    match Json.mem j k with Some (Json.Str s) -> Some s | _ -> None
  in
  let num k =
    match Json.mem j k with Some (Json.Num n) -> Some n | _ -> None
  in
  let pairs k f =
    match Json.mem j k with
    | Some (Json.Obj kvs) -> List.filter_map (fun (k, v) -> f k v) kvs
    | _ -> []
  in
  match (num "ts", str "trace", str "kind", str "label") with
  | Some ts, Some trace, Some kind, Some label ->
      Ok
        {
          Obs.Flight.fr_ts = ts;
          fr_dur = Option.value ~default:0.0 (num "dur");
          fr_trace = trace;
          fr_id = int_of_float (Option.value ~default:0.0 (num "span"));
          fr_parent = int_of_float (Option.value ~default:(-1.0) (num "parent"));
          fr_kind = kind;
          fr_label = label;
          fr_counters =
            pairs "counters" (fun k v ->
                match v with Json.Num n -> Some (k, n) | _ -> None);
          fr_args =
            pairs "args" (fun k v ->
                match v with Json.Str s -> Some (k, s) | _ -> None);
        }
  | _ -> Error "flight record missing ts/trace/kind/label"

(* per-process dump sequence: unique file names without wall-clock races *)
let seq = Atomic.make 0

let dump ~dir ~reason ~trace () : string option =
  let records = Obs.Flight.records () in
  let dropped = Obs.Flight.dropped () in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"reason\": \"%s\", \"trace\": \"%s\", \"dumped_at\": %.6f, \
        \"dropped\": %d, \"records\": %d}\n"
       (Json.escape reason) (Json.escape trace)
       (Unix.gettimeofday ())
       dropped (List.length records));
  List.iter
    (fun r ->
      Buffer.add_string b (record_to_json r);
      Buffer.add_char b '\n')
    records;
  Binfile.mkdirs dir;
  let path =
    Filename.concat dir
      (Printf.sprintf "flight-%d-%04d-%s.bin" (Unix.getpid ())
         (Atomic.fetch_and_add seq 1)
         reason)
  in
  if Binfile.write ~path ~magic ~version (Buffer.contents b) then Some path
  else None

let load path : (dump, string) result =
  match Binfile.read ~path ~magic ~version with
  | None ->
      Error
        (Printf.sprintf "%s: not a readable OVERIFY-FLIGHT v%d file" path
           version)
  | Some payload -> (
      let lines =
        List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' payload)
      in
      match lines with
      | [] -> Error (path ^ ": empty flight payload")
      | header :: rest -> (
          match Json.parse header with
          | Error msg -> Error ("bad flight header: " ^ msg)
          | Ok hj ->
              let str k d =
                match Json.mem hj k with
                | Some (Json.Str s) -> s
                | _ -> d
              in
              let num k d =
                match Json.mem hj k with
                | Some (Json.Num n) -> n
                | _ -> d
              in
              let rec parse_records acc = function
                | [] -> Ok (List.rev acc)
                | l :: tl -> (
                    match Json.parse l with
                    | Error msg -> Error ("bad flight record: " ^ msg)
                    | Ok j -> (
                        match record_of_json j with
                        | Error msg -> Error msg
                        | Ok r -> parse_records (r :: acc) tl))
              in
              Result.map
                (fun records ->
                  {
                    fd_reason = str "reason" "";
                    fd_trace = str "trace" "";
                    fd_dumped_at = num "dumped_at" 0.0;
                    fd_dropped = int_of_float (num "dropped" 0.0);
                    fd_records = records;
                  })
                (parse_records [] rest)))

let render ?(oc = stdout) (d : dump) : unit =
  Printf.fprintf oc
    "flight record: reason=%s%s records=%d dropped=%d\n"
    (if d.fd_reason = "" then "unknown" else d.fd_reason)
    (if d.fd_trace = "" then "" else " trace=" ^ d.fd_trace)
    (List.length d.fd_records)
    d.fd_dropped;
  let t0 =
    match d.fd_records with
    | r :: _ -> r.Obs.Flight.fr_ts
    | [] -> d.fd_dumped_at
  in
  (* spans know their parent span id; indent children under ancestors *)
  let depth_of = Hashtbl.create 64 in
  let depth r =
    let open Obs.Flight in
    let d =
      if r.fr_parent < 0 then 0
      else
        match Hashtbl.find_opt depth_of r.fr_parent with
        | Some pd -> pd + 1
        | None -> 1
    in
    if r.fr_kind = "span" && r.fr_id > 0 then Hashtbl.replace depth_of r.fr_id d;
    d
  in
  List.iter
    (fun (r : Obs.Flight.record) ->
      let open Obs.Flight in
      let indent = String.make (2 * depth r) ' ' in
      let counters =
        String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf " %s=%g" k v) r.fr_counters)
      in
      let args =
        String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) r.fr_args)
      in
      Printf.fprintf oc "%+10.3fms %-5s %-16s %s%s%s%s%s\n"
        ((r.fr_ts -. t0) *. 1000.0)
        r.fr_kind
        (if r.fr_trace = "" then "-" else r.fr_trace)
        indent r.fr_label
        (if r.fr_dur > 0.0 then Printf.sprintf " (%.3fms)" (r.fr_dur *. 1000.0)
         else "")
        counters args)
    d.fd_records
