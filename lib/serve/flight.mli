(** Flight-recorder persistence: dump the bounded in-memory span/event
    ring ({!Overify_obs.Obs.Flight}) to a post-mortem file and load it
    back ([overify postmortem FILE]).

    The daemon dumps whenever a request degrades, a worker crash or
    injected kill surfaces, or the daemon shuts down; the chaos harness
    dumps after every faulted schedule to prove each injected fault left
    a readable record.

    On-disk format: a {!Overify_solver.Binfile} frame (magic
    ["OVERIFY-FLIGHT"], version 1, length + checksum, written
    atomically) whose payload is one JSON header line — [{"reason",
    "trace", "dumped_at", "dropped", "records"}] — followed by one JSON
    line per ring record (oldest first), each carrying
    [ts/dur/trace/span/parent/kind/label/counters/args].  The ring lives
    in [lib/obs], which cannot depend on the solver's [Binfile]; this
    module supplies the file discipline from the serve layer. *)

val magic : string
val version : int

type dump = {
  fd_reason : string;     (** why the dump was cut, e.g. ["degraded"],
                              ["killed"], ["shutdown"], ["chaos"] *)
  fd_trace : string;      (** trace id of the triggering request; may be
                              empty (shutdown dumps) *)
  fd_dumped_at : float;   (** Unix seconds *)
  fd_dropped : int;       (** ring evictions before the dump — how much
                              history the cap discarded *)
  fd_records : Overify_obs.Obs.Flight.record list;  (** oldest first *)
}

val record_to_json : Overify_obs.Obs.Flight.record -> string
(** One record as a single JSON line, fixed key order. *)

val record_of_json :
  Json.t -> (Overify_obs.Obs.Flight.record, string) result

val dump : dir:string -> reason:string -> trace:string -> unit -> string option
(** Snapshot the current ring to a fresh file under [dir] (created if
    missing); the file name embeds pid, a per-process sequence number
    and [reason].  Returns the path, or [None] if the write failed.
    The ring is left intact — later dumps overlap earlier ones. *)

val load : string -> (dump, string) result
(** Strict: a corrupt frame, bad header or unparsable record line is an
    [Error], not a partial dump. *)

val render : ?oc:out_channel -> dump -> unit
(** Human-readable post-mortem: a header line, then one line per record
    with milliseconds relative to the first record, trace id, span
    indentation, duration, counters and args. *)
