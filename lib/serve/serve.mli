(** The verification service: a long-running daemon behind a Unix socket
    ([overify serve]).

    Concurrency model (DESIGN.md "Service architecture"): one accept
    thread, one handler thread per connection, and a {e single} executor
    thread that runs every compile/verify/tv job in submission order.
    Jobs are serialized because the engine owns process-global symbolic
    state ([Bv.reset] per run); within a job, exploration still shards
    across OCaml domains via the engine's [`Parallel] scheduler
    ([rq_jobs]).  Handler threads never touch engine state — they only
    frame, parse, deduplicate and wait.

    Deduplication: requests are keyed by {!Protocol.fingerprint} (every
    semantic field).  A request whose key is already executing joins the
    in-flight job's waiters; a key completed recently is answered from a
    bounded FIFO cache.  Either way the response body is byte-identical
    to the first computation's — only the envelope's [id] and [dedup]
    fields differ.

    Warm state: the daemon owns one {!Overify_solver.Store.t} for its
    whole lifetime and injects it into every engine run
    ([Engine.config.store]), so request N pays only marginal solver cost;
    the store doubles as the cross-request canonical-query cache and is
    saved (atomically) every few jobs and at shutdown.

    Reliability: a crashing request — injected [Fault.Killed], a compile
    error, a malformed fault spec — produces a structured error body and
    never takes the daemon down.  Malformed, truncated or oversized
    frames get a structured [protocol] error (when the peer is still
    readable) and close only that connection.

    Observability (DESIGN.md "Observability"): every admitted request
    gets a fingerprint-derived trace id (echoed in the envelope's
    [trace] field) and a root span threaded through
    [Engine.config.span] down to per-query solves; the [metrics] op
    returns the daemon's full telemetry registry (per-kind latency
    histograms, queue depth, dedup/store/summary hit counters, uptime,
    degradation counts) as JSON or Prometheus text; and a bounded
    in-memory ring of recent spans/events is dumped to a post-mortem
    flight record ([overify postmortem]) whenever a request degrades,
    a kill/crash surfaces, or the daemon shuts down. *)

type t

val start :
  ?socket:string ->
  ?cache_dir:string ->
  ?recent_cap:int ->
  ?save_every:int ->
  ?obs:bool ->
  ?flight_dir:string ->
  ?log_level:Log.level ->
  unit ->
  t
(** Bind, listen and spawn the accept + executor threads; returns once
    the socket accepts connections.  [socket] defaults to a fresh path
    under the temp directory; [cache_dir] persists the warm store across
    daemon restarts (default: a private temp dir removed at [stop]);
    [recent_cap] bounds the recently-completed cache (default 128);
    [save_every] is the store save cadence in executed jobs (default 32).

    [obs] sets per-request registry metrics on/off for the whole daemon
    — the flag beats the [OVERIFY_OBS] environment variable, so clients
    need nothing in their environment; [None] defers to the variable.
    [flight_dir] enables the flight recorder: post-mortem dumps are
    written there (created if missing) on degraded requests, contained
    kills/crashes, internal errors and shutdown.  [log_level] overrides
    the [OVERIFY_LOG] stderr threshold (same flag-beats-env rule). *)

val socket_path : t -> string

val store : t -> Overify_solver.Store.t
(** The warm shared store (for tests and introspection). *)

val wait : t -> unit
(** Block until the daemon stops (a [shutdown] request, or {!stop} from
    another thread), then drain the executor, answer outstanding waiters,
    save the store and clean up.  Idempotent with {!stop}. *)

val stop : t -> unit
(** Initiate shutdown and {!wait}.  Idempotent. *)
