(** The verification service: a long-running daemon behind a Unix socket
    ([overify serve]).

    Concurrency model (DESIGN.md "Service architecture"): one accept
    thread, one handler thread per connection, and a {e single} executor
    thread that runs every compile/verify/tv job in submission order.
    Jobs are serialized because the engine owns process-global symbolic
    state ([Bv.reset] per run); within a job, exploration still shards
    across OCaml domains via the engine's [`Parallel] scheduler
    ([rq_jobs]).  Handler threads never touch engine state — they only
    frame, parse, deduplicate and wait.

    Deduplication: requests are keyed by {!Protocol.fingerprint} (every
    semantic field).  A request whose key is already executing joins the
    in-flight job's waiters; a key completed recently is answered from a
    bounded FIFO cache.  Either way the response body is byte-identical
    to the first computation's — only the envelope's [id] and [dedup]
    fields differ.

    Warm state: the daemon owns one {!Overify_solver.Store.t} for its
    whole lifetime and injects it into every engine run
    ([Engine.config.store]), so request N pays only marginal solver cost;
    the store doubles as the cross-request canonical-query cache and is
    saved (atomically) every few jobs and at shutdown.

    Reliability: a crashing request — injected [Fault.Killed], a compile
    error, a malformed fault spec — produces a structured error body and
    never takes the daemon down.  Malformed, truncated or oversized
    frames get a structured [protocol] error (when the peer is still
    readable) and close only that connection.

    Overload and cancellation (DESIGN.md "Overload and cancellation
    model"): every admitted job carries an absolute deadline
    (admission time + [rq_timeout], covering queue wait, compile, symex
    and solve) materialized as a deadline-armed
    {!Overify_fault.Cancel.t} threaded through [Engine.config.cancel]
    down to the per-worker solver contexts.  A run that outlives its
    deadline stops at the next cooperative check point and is answered
    with a structured [deadline_exceeded] error that still carries the
    partial engine result (including its ["deadline_exceeded"]
    degradation entry).  Admission control: when [queue_cap] jobs are
    already queued, new work is shed with an [overloaded] error whose
    [retry_after_ms] hint is derived from the live per-kind latency
    histograms and queue depth; shed requests never touch the executor.
    Queued jobs whose deadline expires are likewise answered without
    running.  A watchdog thread escalates on {e wedged} jobs — running
    past deadline + [grace], meaning cooperative checks are not being
    reached (e.g. an injected [stall@N] stuck solver): it dumps a
    flight record, force-cancels the token (which the stall polls) and
    the daemon keeps serving.  Because the handler threads are
    synchronous (one frame in, one response out), each connection has
    at most one request in flight by construction — the per-connection
    in-flight cap is 1.  Slow peers are bounded too: a connection that
    stalls mid-frame past [frame_timeout] is answered
    [bad_frame:timeout] and dropped (the slowloris defence), and a
    connection idle past [idle_timeout] is reaped silently.  Transient
    answers ([deadline_exceeded], [overloaded], [unavailable]) never
    enter the recent-dedup cache, so a retry re-executes; the warm
    store's entries are individually complete, so a
    cancelled-then-retried run is byte-identical to an uncancelled one
    under [--deterministic].

    Observability (DESIGN.md "Observability"): every admitted request
    gets a fingerprint-derived trace id (echoed in the envelope's
    [trace] field) and a root span threaded through
    [Engine.config.span] down to per-query solves; the [metrics] op
    returns the daemon's full telemetry registry (per-kind latency
    histograms, queue depth, dedup/store/summary hit counters, uptime,
    degradation counts) as JSON or Prometheus text; and a bounded
    in-memory ring of recent spans/events is dumped to a post-mortem
    flight record ([overify postmortem]) whenever a request degrades,
    a kill/crash surfaces, or the daemon shuts down. *)

type t

val start :
  ?socket:string ->
  ?cache_dir:string ->
  ?recent_cap:int ->
  ?save_every:int ->
  ?queue_cap:int ->
  ?grace:float ->
  ?idle_timeout:float ->
  ?frame_timeout:float ->
  ?obs:bool ->
  ?flight_dir:string ->
  ?log_level:Log.level ->
  unit ->
  t
(** Bind, listen and spawn the accept + executor threads; returns once
    the socket accepts connections.  [socket] defaults to a fresh path
    under the temp directory; [cache_dir] persists the warm store across
    daemon restarts (default: a private temp dir removed at [stop]);
    [recent_cap] bounds the recently-completed cache (default 128);
    [save_every] is the store save cadence in executed jobs (default 32).

    [queue_cap] bounds the executor queue — admission beyond it sheds
    with [overloaded] + [retry_after_ms] (default: unbounded, the
    pre-admission-control behaviour).  [grace] is the watchdog's
    escalation margin past a running job's deadline (default 2 s).
    [idle_timeout] (default 600 s) reaps connections with no frame in
    flight; [frame_timeout] (default 30 s) bounds a frame's remainder
    once its first bytes arrived.  A zero or negative timeout disables
    that bound.

    [obs] sets per-request registry metrics on/off for the whole daemon
    — the flag beats the [OVERIFY_OBS] environment variable, so clients
    need nothing in their environment; [None] defers to the variable.
    [flight_dir] enables the flight recorder: post-mortem dumps are
    written there (created if missing) on degraded requests, contained
    kills/crashes, internal errors and shutdown.  [log_level] overrides
    the [OVERIFY_LOG] stderr threshold (same flag-beats-env rule). *)

val socket_path : t -> string

val store : t -> Overify_solver.Store.t
(** The warm shared store (for tests and introspection). *)

val wait : t -> unit
(** Block until the daemon stops (a [shutdown] request, or {!stop} from
    another thread), then drain the executor, answer outstanding waiters,
    save the store and clean up.  Idempotent with {!stop}. *)

val stop : t -> unit
(** Initiate shutdown and {!wait}.  Idempotent. *)
