(** Wire protocol: framed JSON requests/responses.  See protocol.mli. *)

module Binfile = Overify_solver.Binfile

type kind = Verify | Compile | Tv | Stats | Metrics | Shutdown

let kind_name = function
  | Verify -> "verify"
  | Compile -> "compile"
  | Tv -> "tv"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Shutdown -> "shutdown"

let kind_of_name = function
  | "verify" -> Some Verify
  | "compile" -> Some Compile
  | "tv" -> Some Tv
  | "stats" -> Some Stats
  | "metrics" -> Some Metrics
  | "shutdown" -> Some Shutdown
  | _ -> None

type request = {
  rq_id : int;
  rq_kind : kind;
  rq_program : string;
  rq_source : string;
  rq_level : string;
  rq_input_size : int;
  rq_timeout : float;
  rq_jobs : int;
  rq_link_libc : bool;
  rq_deterministic : bool;
  rq_faults : string;
  rq_summaries : bool;
  rq_format : string;
}

let default_request =
  {
    rq_id = 0;
    rq_kind = Verify;
    rq_program = "";
    rq_source = "";
    rq_level = "OVERIFY";
    rq_input_size = 4;
    rq_timeout = 30.0;
    rq_jobs = 1;
    rq_link_libc = true;
    rq_deterministic = false;
    rq_faults = "";
    rq_summaries = false;
    rq_format = "";
  }

let request_to_json (r : request) : string =
  Printf.sprintf
    "{\"id\": %d, \"kind\": \"%s\", \"program\": \"%s\", \"source\": \
     \"%s\", \"level\": \"%s\", \"input_size\": %d, \"timeout\": %.17g, \
     \"jobs\": %d, \"link_libc\": %b, \"deterministic\": %b, \"faults\": \
     \"%s\", \"summaries\": %b, \"format\": \"%s\"}"
    r.rq_id (kind_name r.rq_kind) (Json.escape r.rq_program)
    (Json.escape r.rq_source) (Json.escape r.rq_level) r.rq_input_size
    r.rq_timeout r.rq_jobs r.rq_link_libc r.rq_deterministic
    (Json.escape r.rq_faults) r.rq_summaries (Json.escape r.rq_format)

let known_keys =
  [ "id"; "kind"; "program"; "source"; "level"; "input_size"; "timeout";
    "jobs"; "link_libc"; "deterministic"; "faults"; "summaries"; "format" ]

let request_of_json (j : Json.t) : (request, string) result =
  match j with
  | Json.Obj kvs -> (
      match
        List.find_opt (fun (k, _) -> not (List.mem k known_keys)) kvs
      with
      | Some (k, _) -> Error (Printf.sprintf "unknown request field %S" k)
      | None -> (
          let field name conv default =
            match List.assoc_opt name kvs with
            | None -> Ok default
            | Some v -> (
                match conv v with
                | Some x -> Ok x
                | None -> Error (Printf.sprintf "bad type for field %S" name))
          in
          let ( let* ) r f = Result.bind r f in
          let* id = field "id" Json.int_ default_request.rq_id in
          let* kind_s =
            match List.assoc_opt "kind" kvs with
            | None -> Error "missing request field \"kind\""
            | Some v -> (
                match Json.str v with
                | Some s -> Ok s
                | None -> Error "bad type for field \"kind\"")
          in
          let* kind =
            match kind_of_name kind_s with
            | Some k -> Ok k
            | None -> Error (Printf.sprintf "unknown request kind %S" kind_s)
          in
          let* program = field "program" Json.str default_request.rq_program in
          let* source = field "source" Json.str default_request.rq_source in
          let* level = field "level" Json.str default_request.rq_level in
          let* input_size =
            field "input_size" Json.int_ default_request.rq_input_size
          in
          let* timeout = field "timeout" Json.num default_request.rq_timeout in
          let* jobs = field "jobs" Json.int_ default_request.rq_jobs in
          let* link_libc =
            field "link_libc" Json.bool_ default_request.rq_link_libc
          in
          let* deterministic =
            field "deterministic" Json.bool_ default_request.rq_deterministic
          in
          let* faults = field "faults" Json.str default_request.rq_faults in
          let* summaries =
            field "summaries" Json.bool_ default_request.rq_summaries
          in
          let* format = field "format" Json.str default_request.rq_format in
          if not (List.mem format [ ""; "json"; "prometheus" ]) then
            Error (Printf.sprintf "unknown format %S" format)
          else if input_size < 0 || input_size > 64 then
            Error (Printf.sprintf "input_size %d out of range [0, 64]" input_size)
          else if jobs < 1 || jobs > 64 then
            Error (Printf.sprintf "jobs %d out of range [1, 64]" jobs)
          else if not (Float.is_finite timeout) || timeout <= 0.0 then
            Error "timeout must be a positive finite number"
          else
            Ok
              {
                rq_id = id;
                rq_kind = kind;
                rq_program = program;
                rq_source = source;
                rq_level = level;
                rq_input_size = input_size;
                rq_timeout = timeout;
                rq_jobs = jobs;
                rq_link_libc = link_libc;
                rq_deterministic = deterministic;
                rq_faults = faults;
                rq_summaries = summaries;
                rq_format = format;
              }))
  | _ -> Error "request must be a JSON object"

let fingerprint (r : request) : string =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            kind_name r.rq_kind;
            r.rq_program;
            r.rq_source;
            r.rq_level;
            string_of_int r.rq_input_size;
            Printf.sprintf "%h" r.rq_timeout;
            string_of_int r.rq_jobs;
            string_of_bool r.rq_link_libc;
            string_of_bool r.rq_deterministic;
            r.rq_faults;
            string_of_bool r.rq_summaries;
            r.rq_format;
          ]))

(* ---------------- framing ---------------- *)

let magic = "OVERIFY-SERVE"
let version = 1
let max_frame = 8 * 1024 * 1024
let header_len = String.length magic + 4 + 8

type frame_error =
  | Closed
  | Truncated
  | Bad_magic
  | Bad_version
  | Oversized of int
  | Corrupt
  | Timed_out
  | Idle

let frame_error_name = function
  | Closed -> "closed"
  | Truncated -> "truncated"
  | Bad_magic -> "bad_magic"
  | Bad_version -> "bad_version"
  | Oversized n -> Printf.sprintf "oversized:%d" n
  | Corrupt -> "corrupt"
  | Timed_out -> "timeout"
  | Idle -> "idle"

let write_frame fd payload =
  let bytes = Binfile.frame ~magic ~version payload in
  let len = String.length bytes in
  let buf = Bytes.unsafe_of_string bytes in
  let rec go off =
    if off >= len then true
    else
      match Unix.write fd buf off (len - off) with
      | 0 -> false
      | n -> go (off + n)
      | exception Unix.Unix_error _ -> false
  in
  go 0

(** Read exactly [want] bytes; [Ok got] may be short only at EOF.
    [deadline] (absolute) bounds the whole read: expiry before the first
    byte is [Error Idle] (a quiet connection), expiry mid-read is
    [Error Timed_out] (a slow peer stalled inside the data). *)
let really_read ?deadline fd want : (string, frame_error) result =
  let buf = Bytes.create want in
  (* wait until readable or the deadline passes; true = data (or EOF)
     is available *)
  let rec wait_readable d =
    let left = d -. Unix.gettimeofday () in
    if left <= 0.0 then false
    else
      match Unix.select [ fd ] [] [] left with
      | [], _, _ -> false
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable d
      | exception Unix.Unix_error _ -> true (* let read surface the error *)
  in
  let rec go off =
    if off >= want then Ok (Bytes.to_string buf)
    else
      match deadline with
      | Some d when not (wait_readable d) ->
          if off = 0 then Error Idle else Error Timed_out
      | _ -> (
          match Unix.read fd buf off (want - off) with
          | 0 -> if off = 0 then Error Closed else Error Truncated
          | n -> go (off + n)
          | exception Unix.Unix_error
              ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
              if off = 0 then Error Closed else Error Truncated
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
          | exception Unix.Unix_error _ -> Error Truncated)
  in
  go 0

let get_int_be s off width =
  let v = ref 0 in
  for i = 0 to width - 1 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let read_frame ?(max = max_frame) ?idle_timeout ?frame_timeout fd :
    (string, frame_error) result =
  (* [idle_timeout] bounds the wait for a frame to BEGIN (its expiry,
     [Idle], means a quiet keep-alive connection — the reaper's cue);
     [frame_timeout] bounds the rest of the frame once the magic landed
     (its expiry, [Timed_out], means a slow peer parked mid-frame — the
     slowloris defence).  Both are relative seconds, both optional. *)
  let abs = Option.map (fun t -> Unix.gettimeofday () +. t) in
  (* validate the magic as soon as its bytes arrive — a peer that sent
     non-protocol garbage is answered immediately instead of both sides
     waiting for a full header that will never come *)
  let mlen = String.length magic in
  match really_read ?deadline:(abs idle_timeout) fd mlen with
  | Error _ as e -> e
  | Ok m when m <> magic -> Error Bad_magic
  | Ok _ -> (
      let deadline = abs frame_timeout in
      (* past the magic, an expiry at offset 0 is still a mid-frame
         stall, never an idle connection *)
      let demote_idle = function Error Idle -> Error Timed_out | r -> r in
      match demote_idle (really_read ?deadline fd (header_len - mlen)) with
      | Error Closed -> Error Truncated
      | Error _ as e -> e
      | Ok rest_header ->
          let header = magic ^ rest_header in
          if get_int_be header mlen 4 <> version then Error Bad_version
          else
            let plen = get_int_be header (mlen + 4) 8 in
            if plen > max then Error (Oversized plen)
            else (
              match demote_idle (really_read ?deadline fd (plen + 16)) with
              | Error Closed -> Error Truncated
              | Error _ as e -> e
              | Ok rest -> (
                  (* revalidate the reassembled frame through Binfile —
                     one parser owns the format *)
                  match Binfile.parse ~magic ~version (header ^ rest) with
                  | Some payload -> Ok payload
                  | None -> Error Corrupt)))

(* ---------------- response envelope ---------------- *)

type body = {
  b_status : string;
  b_kind : string;
  b_error : (string * string) option;
  b_retry_after_ms : int option;
      (** machine-readable backoff hint attached to the error object
          (the [overloaded] shed carries one so clients can retry at the
          pace the daemon's live latency histograms suggest) *)
  b_result : string;
  b_obs : string;
}

let ok_body ~kind ~result ?(obs = "[]") () =
  { b_status = "ok"; b_kind = kind; b_error = None; b_retry_after_ms = None;
    b_result = result; b_obs = obs }

let error_body ~kind ~err ~msg =
  { b_status = "error"; b_kind = kind; b_error = Some (err, msg);
    b_retry_after_ms = None; b_result = "null"; b_obs = "[]" }

let response ~id ~dedup ?(trace = "") ~elapsed_ms (b : body) : string =
  let error =
    match b.b_error with
    | None -> "null"
    | Some (k, m) ->
        Printf.sprintf "{\"kind\": \"%s\", \"message\": \"%s\"%s}"
          (Json.escape k) (Json.escape m)
          (match b.b_retry_after_ms with
          | Some ms -> Printf.sprintf ", \"retry_after_ms\": %d" ms
          | None -> "")
  in
  Printf.sprintf
    "{\"id\": %d, \"status\": \"%s\", \"kind\": \"%s\", \"dedup\": \
     \"%s\", \"trace\": \"%s\", \"elapsed_ms\": %.1f, \"error\": %s, \
     \"result\": %s, \"obs\": %s}"
    id b.b_status (Json.escape b.b_kind) (Json.escape dedup)
    (Json.escape trace) elapsed_ms error b.b_result b.b_obs

(* ---------------- raw field extraction ---------------- *)

(** Scan the raw bytes of the value of top-level [key] in an object
    document: find ["key":] at depth 1, then take the balanced value.
    Only used on documents we emitted ourselves, so the scan can assume
    well-formedness (and returns [None] rather than lying otherwise). *)
let extract_field (json : string) (key : string) : string option =
  let n = String.length json in
  let needle = "\"" ^ key ^ "\"" in
  let nn = String.length needle in
  (* a key match must be followed by a colon — a string VALUE that
     happens to equal the needle (e.g. "status": "error" vs the "error"
     key) is not a member key *)
  let followed_by_colon j =
    let rec skip j =
      if j >= n then false
      else
        match json.[j] with
        | ' ' | '\t' | '\n' | '\r' -> skip (j + 1)
        | ':' -> true
        | _ -> false
    in
    skip j
  in
  (* find the key at object depth 1, skipping string contents *)
  let rec find i depth in_str escaped =
    if i >= n then None
    else
      let c = json.[i] in
      if in_str then
        if escaped then find (i + 1) depth true false
        else if c = '\\' then find (i + 1) depth true true
        else if c = '"' then find (i + 1) depth false false
        else find (i + 1) depth true false
      else
        match c with
        | '"' ->
            if
              depth = 1
              && i + nn <= n
              && String.sub json i nn = needle
              && followed_by_colon (i + nn)
            then Some (i + nn)
            else find (i + 1) depth true false
        | '{' | '[' -> find (i + 1) (depth + 1) false false
        | '}' | ']' -> find (i + 1) (depth - 1) false false
        | _ -> find (i + 1) depth false false
  in
  match find 0 0 false false with
  | None -> None
  | Some after_key ->
      (* skip whitespace and the colon *)
      let rec skip i =
        if i >= n then None
        else
          match json.[i] with
          | ' ' | '\t' | '\n' | '\r' | ':' -> skip (i + 1)
          | _ -> Some i
      in
      Option.bind (skip after_key) (fun start ->
          (* take the balanced value *)
          let rec take i depth in_str escaped =
            if i >= n then None
            else
              let c = json.[i] in
              if in_str then
                if escaped then take (i + 1) depth true false
                else if c = '\\' then take (i + 1) depth true true
                else if c = '"' then
                  if depth = 0 then Some (i + 1) else take (i + 1) depth false false
                else take (i + 1) depth true false
              else
                match c with
                | '"' -> take (i + 1) depth true false
                | '{' | '[' -> take (i + 1) (depth + 1) false false
                | '}' | ']' ->
                    if depth = 0 then Some i
                    else if depth = 1 then Some (i + 1)
                    else take (i + 1) (depth - 1) false false
                | ',' when depth = 0 -> Some i
                | _ -> take (i + 1) depth false false
          in
          Option.map
            (fun stop -> String.trim (String.sub json start (stop - start)))
            (take start 0 false false))
