type t = { fd : Unix.file_descr; mutable open_ : bool }

let connect path =
  (* a daemon that died mid-conversation must fail our write, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; open_ = true }

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send_payload t payload = Protocol.write_frame t.fd payload

let send_bytes t bytes =
  let buf = Bytes.unsafe_of_string bytes in
  let len = String.length bytes in
  let rec go off =
    if off >= len then true
    else
      match Unix.write t.fd buf off (len - off) with
      | 0 -> false
      | n -> go (off + n)
      | exception Unix.Unix_error _ -> false
  in
  go 0

let read_response t = Protocol.read_frame t.fd

let rpc t rq =
  if send_payload t (Protocol.request_to_json rq) then read_response t
  else Error Protocol.Closed
