type t = { fd : Unix.file_descr; mutable open_ : bool }

let connect path =
  (* a daemon that died mid-conversation must fail our write, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; open_ = true }

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send_payload t payload = Protocol.write_frame t.fd payload

let send_bytes t bytes =
  let buf = Bytes.unsafe_of_string bytes in
  let len = String.length bytes in
  let rec go off =
    if off >= len then true
    else
      match Unix.write t.fd buf off (len - off) with
      | 0 -> false
      | n -> go (off + n)
      | exception Unix.Unix_error _ -> false
  in
  go 0

let read_response t = Protocol.read_frame t.fd

let rpc t rq =
  if send_payload t (Protocol.request_to_json rq) then read_response t
  else Error Protocol.Closed

(* ---------------- retrying one-shot rpc ---------------- *)

(** [Some hint_ms] iff the envelope is an [overloaded] shed; the hint is
    0 when the error object carries no [retry_after_ms]. *)
let overloaded_hint payload =
  match Protocol.extract_field payload "error" with
  | Some err when String.length err > 0 && err.[0] = '{' -> (
      match Protocol.extract_field err "kind" with
      | Some "\"overloaded\"" ->
          Some
            (match Protocol.extract_field err "retry_after_ms" with
            | Some v ->
                Option.value ~default:0 (int_of_string_opt (String.trim v))
            | None -> 0)
      | _ -> None)
  | _ -> None

let rpc_retry ~socket ?(retries = 0) ?(backoff_ms = 100) rq =
  (* decorrelation jitter from a private LCG — no [Random] so library
     users' global PRNG state is untouched *)
  let lcg = ref (((Unix.getpid () * 7919) lxor 0x5DEECE6) lor 1) in
  let jitter () =
    lcg := ((!lcg * 1103515245) + 12345) land 0x3FFFFFFF;
    (* uniform-ish in [0.5, 1.5) *)
    0.5 +. (float_of_int (!lcg land 0xFFF) /. 4096.0)
  in
  let sleep_before attempt hint_ms =
    let exp = float_of_int backoff_ms *. (2.0 ** float_of_int attempt) in
    let jittered = exp *. jitter () in
    (* the daemon's pacing hint is a floor, never shortened by jitter *)
    let ms =
      match hint_ms with
      | Some h -> Float.max (float_of_int h) jittered
      | None -> jittered
    in
    Unix.sleepf (Float.min ms 10_000.0 /. 1000.0)
  in
  let retries = max 0 retries in
  let rec go attempt =
    let retry_or msg hint =
      if attempt >= retries then Error msg
      else begin
        sleep_before attempt hint;
        go (attempt + 1)
      end
    in
    match connect socket with
    | exception Unix.Unix_error (e, _, _) ->
        (* daemon not up (yet): connection refused / socket missing *)
        retry_or ("connect: " ^ Unix.error_message e) None
    | c -> (
        let r = rpc c rq in
        close c;
        match r with
        | Error fe ->
            retry_or ("transport: " ^ Protocol.frame_error_name fe) None
        | Ok payload -> (
            match overloaded_hint payload with
            | Some hint when attempt < retries ->
                sleep_before attempt (Some hint);
                go (attempt + 1)
            | _ -> Ok payload))
  in
  go 0
