(** The verification daemon.  See serve.mli for the concurrency model. *)

module Frontend = Overify_minic.Frontend
module Costmodel = Overify_opt.Costmodel
module Pipeline = Overify_opt.Pipeline
module Engine = Overify_symex.Engine
module Tv = Overify_tv.Tv
module Vclib = Overify_vclib.Vclib
module Programs = Overify_corpus.Programs
module Printer = Overify_ir.Printer
module Ir = Overify_ir.Ir
module Store = Overify_solver.Store
module Fault = Overify_fault.Fault
module Cancel = Overify_fault.Cancel
module Obs = Overify_obs.Obs

type counters = {
  mutable c_requests : int;      (** well-formed requests accepted *)
  mutable c_executed : int;      (** jobs actually run by the executor *)
  mutable c_dedup_inflight : int;
  mutable c_dedup_recent : int;
  mutable c_malformed : int;     (** frames/JSON/requests rejected *)
  mutable c_errors : int;        (** responses with status=error *)
  mutable c_shed : int;          (** requests refused at admission (queue full) *)
  mutable c_cancelled : int;     (** running jobs stopped by their cancel token *)
  mutable c_deadline : int;      (** requests answered [deadline_exceeded]
                                     (queued expiries + cancelled runs) *)
  mutable c_watchdog : int;      (** wedged jobs the watchdog escalated on *)
  mutable c_reaped : int;        (** idle connections closed by the reaper *)
}

(** Daemon-lifetime telemetry behind the [metrics] op.  Mutated under
    the daemon lock; wall-clock never leaks into response bodies — the
    [metrics] document is explicitly non-deterministic. *)
type telemetry = {
  tl_started : float;
  tl_lat : (string * Obs.Hist.t) list;
      (** request latency (admission to answer) per queued kind *)
  mutable tl_degraded : int;      (** requests whose run degraded *)
  mutable tl_flight_dumps : int;  (** flight records written *)
  mutable tl_store_hits : int;    (** accumulated over verify runs: *)
  mutable tl_engine_queries : int;
  mutable tl_engine_cache_hits : int;
  mutable tl_solver_time : float;
  mutable tl_sum_instantiated : int;
  mutable tl_sum_opaque : int;
  mutable tl_sum_computed : int;
  mutable tl_sum_cached : int;
}

type job = {
  jb_req : Protocol.request;
  jb_key : string;
  jb_deadline : float;
      (** absolute: admission time + [rq_timeout]; covers queue wait,
          compile, symex and solve *)
  jb_cancel : Cancel.t;
      (** deadline-armed token threaded through the engine and solver;
          the watchdog sets it explicitly on a wedged job *)
  mutable jb_watchdogged : bool;  (** watchdog already escalated on this job *)
  jm : Mutex.t;
  jc : Condition.t;
  mutable jb_body : Protocol.body option;
}

type t = {
  sock_path : string;
  listen_fd : Unix.file_descr;
  st_store : Store.t;
  own_cache_dir : string option;  (** temp dir to remove at stop *)
  flight_dir : string option;     (** post-mortem dumps land here *)
  recent_cap : int;
  save_every : int;
  queue_cap : int;                (** admission control: max queued jobs *)
  grace : float;
      (** watchdog escalation margin past a running job's deadline *)
  idle_timeout : float option;    (** reap quiet keep-alive connections *)
  frame_timeout : float option;   (** slow-peer (mid-frame) read deadline *)
  tl : telemetry;
  lock : Mutex.t;
  work : Condition.t;             (** executor wakeup *)
  queue : job Queue.t;
  inflight : (string, job) Hashtbl.t;
  recent : (string, Protocol.body) Hashtbl.t;
  recent_order : string Queue.t;
  ct : counters;
  mutable running : job option;   (** what the executor is driving now *)
  mutable stopping : bool;
  mutable finished : bool;
  mutable conns : Unix.file_descr list;
  mutable handlers : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable exec_thread : Thread.t option;
  mutable watchdog_thread : Thread.t option;
}

let socket_path t = t.sock_path
let store t = t.st_store

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(** Trace id of a request, derived from its dedup fingerprint so the
    duplicates of a deduplicated request share one trace — the envelope
    stays byte-identical across [dedup] outcomes. *)
let trace_of_key key =
  "rq-" ^ String.sub key 0 (min 12 (String.length key))

(* ---------------- job execution (executor thread only) ---------------- *)

exception Bad_request of string

let compile_module level ~link_libc source =
  let sources =
    if link_libc then [ Vclib.for_cost_model level; source ] else [ source ]
  in
  Frontend.compile_sources sources

(** Per-request metric deltas from the global registry, as a raw JSON
    array.  Empty (and free) unless [OVERIFY_OBS] observability is on;
    counters only — timer sums are wall-clock and would break response
    determinism. *)
let obs_snapshot () =
  if not (Obs.enabled ()) then fun () -> "[]"
  else begin
    let key (c : Obs.Registry.cell) = (c.Obs.Registry.name, c.Obs.Registry.labels) in
    let before = Hashtbl.create 32 in
    List.iter
      (fun (c : Obs.Registry.cell) ->
        Hashtbl.replace before (key c) c.Obs.Registry.count)
      (Obs.Registry.dump ());
    fun () ->
      let deltas =
        List.filter_map
          (fun (c : Obs.Registry.cell) ->
            let prev =
              Option.value ~default:0 (Hashtbl.find_opt before (key c))
            in
            let d = c.Obs.Registry.count - prev in
            if d = 0 || c.Obs.Registry.kind <> Obs.Registry.Counter then None
            else
              Some
                (Printf.sprintf "{\"name\": \"%s\"%s, \"count\": %d}"
                   (Json.escape c.Obs.Registry.name)
                   (match c.Obs.Registry.labels with
                   | [] -> ""
                   | ls ->
                       Printf.sprintf ", \"labels\": {%s}"
                         (String.concat ", "
                            (List.map
                               (fun (k, v) ->
                                 Printf.sprintf "\"%s\": \"%s\"" (Json.escape k)
                                   (Json.escape v))
                               ls)))
                   d))
          (Obs.Registry.dump ())
      in
      "[" ^ String.concat ", " deltas ^ "]"
  end

(** Execute one queued request on the executor thread.  Opens the
    request's root span (every child — compile, engine, workers, solver
    queries — inherits [trace]) and returns the body plus whether the
    run degraded, so the executor can cut a flight record. *)
let run_request t (rq : Protocol.request) ~(trace : string)
    ?(cancel : Cancel.t option) () : Protocol.body * bool =
  let kind = Protocol.kind_name rq.rq_kind in
  let span = Obs.Span.start ~trace ("request." ^ kind) in
  let degraded = ref false in
  let finish_obs = obs_snapshot () in
  let body =
  try
    let faults =
      if rq.rq_faults = "" then None
      else
        match Fault.parse rq.rq_faults with
        | Ok f -> Some f
        | Error msg -> raise (Bad_request ("bad faults spec: " ^ msg))
    in
    let level =
      match Costmodel.of_name rq.rq_level with
      | Some l -> l
      | None ->
          raise
            (Bad_request
               (Printf.sprintf "unknown level %S (use O0/O2/O3/OVERIFY)"
                  rq.rq_level))
    in
    let source =
      if rq.rq_program <> "" then (
        match Programs.find rq.rq_program with
        | Some p -> p.Programs.source
        | None ->
            raise
              (Bad_request
                 (Printf.sprintf "unknown corpus program %S (available: %s)"
                    rq.rq_program
                    (String.concat ", " Programs.names))))
      else if rq.rq_source <> "" then rq.rq_source
      else raise (Bad_request "request has neither \"program\" nor \"source\"")
    in
    let body =
      match rq.rq_kind with
      | Protocol.Verify ->
          let cspan = Obs.Span.start ~parent:span "compile" in
          let m =
            (Pipeline.optimize level
               (compile_module level ~link_libc:rq.rq_link_libc source))
              .Pipeline.modul
          in
          Obs.Span.finish cspan;
          let searcher =
            if rq.rq_jobs > 1 then `Parallel rq.rq_jobs else `Dfs
          in
          let r =
            Engine.run
              ~config:
                {
                  Engine.default_config with
                  Engine.input_size = rq.rq_input_size;
                  timeout = rq.rq_timeout;
                  searcher;
                  summaries = rq.rq_summaries;
                  faults;
                  store = Some t.st_store;
                  span = Some span;
                  cancel;
                }
              m
          in
          degraded := r.Engine.degradations <> [];
          with_lock t (fun () ->
              let tl = t.tl in
              if !degraded then tl.tl_degraded <- tl.tl_degraded + 1;
              tl.tl_store_hits <- tl.tl_store_hits + r.Engine.hits_store;
              tl.tl_engine_queries <- tl.tl_engine_queries + r.Engine.queries;
              tl.tl_engine_cache_hits <-
                tl.tl_engine_cache_hits + r.Engine.cache_hits;
              tl.tl_solver_time <- tl.tl_solver_time +. r.Engine.solver_time;
              tl.tl_sum_instantiated <-
                tl.tl_sum_instantiated + r.Engine.summary_instantiated;
              tl.tl_sum_opaque <- tl.tl_sum_opaque + r.Engine.summary_opaque;
              tl.tl_sum_computed <-
                tl.tl_sum_computed + r.Engine.summary_computed;
              tl.tl_sum_cached <- tl.tl_sum_cached + r.Engine.summary_cached);
          Protocol.ok_body ~kind
            ~result:
              (Engine.result_to_json ~deterministic:rq.rq_deterministic r)
            ()
      | Protocol.Compile ->
          let cspan = Obs.Span.start ~parent:span "compile" in
          let r =
            Pipeline.optimize level
              (compile_module level ~link_libc:rq.rq_link_libc source)
          in
          Obs.Span.finish cspan;
          let m = r.Pipeline.modul in
          let size =
            List.fold_left (fun acc f -> acc + Ir.func_size f) 0 m.Ir.funcs
          in
          Protocol.ok_body ~kind
            ~result:
              (Printf.sprintf
                 "{\"level\": \"%s\", \"functions\": %d, \"size\": %d, \
                  \"ir\": \"%s\"}"
                 (Json.escape level.Costmodel.name)
                 (List.length m.Ir.funcs) size
                 (Json.escape (Printer.modul_to_string m)))
            ()
      | Protocol.Tv ->
          let budget =
            {
              Tv.default_budget with
              Tv.input_size = min rq.rq_input_size 4;
              timeout = rq.rq_timeout;
            }
          in
          let cspan = Obs.Span.start ~parent:span "compile" in
          let m = compile_module level ~link_libc:rq.rq_link_libc source in
          Obs.Span.finish cspan;
          let vspan = Obs.Span.start ~parent:span "tv.validate" in
          let (_, report) = Tv.validate ~budget level m in
          Obs.Span.finish vspan;
          Protocol.ok_body ~kind
            ~result:
              (Printf.sprintf
                 "{\"level\": \"%s\", \"passes\": %d, \"counterexamples\": \
                  %d, \"inconclusive\": %d, \"sound\": %b}"
                 (Json.escape report.Tv.level)
                 (List.length report.Tv.records)
                 (List.length (Tv.counterexamples report))
                 (List.length (Tv.inconclusives report))
                 (Tv.counterexamples report = []))
            ()
      | Protocol.Stats | Protocol.Metrics | Protocol.Shutdown ->
          (* handled inline by the connection handler, never queued *)
          assert false
    in
    { body with Protocol.b_obs = finish_obs () }
  with
  | Bad_request msg -> Protocol.error_body ~kind ~err:"bad_request" ~msg
  | Cancel.Cancelled reason ->
      (* safety net: the engine converts cancellation into a degraded
         result itself; anything cancelled outside it (compile, tv)
         still answers structurally *)
      Protocol.error_body ~kind ~err:"deadline_exceeded" ~msg:reason
  | Fault.Killed msg ->
      (* the injected analogue of SIGKILL: in one-shot mode it ends the
         process; in service mode it may only end the request *)
      Protocol.error_body ~kind ~err:"killed"
        ~msg:("injected kill contained by daemon: " ^ msg)
  | Failure msg -> Protocol.error_body ~kind ~err:"compile_error" ~msg
  | Invalid_argument msg -> Protocol.error_body ~kind ~err:"bad_request" ~msg
  | Stack_overflow ->
      Protocol.error_body ~kind ~err:"internal" ~msg:"stack overflow"
  | e ->
      Protocol.error_body ~kind ~err:"internal" ~msg:(Printexc.to_string e)
  in
  (match body.Protocol.b_error with
  | Some (err, msg) ->
      Obs.Span.event ~parent:span
        ~args:[ ("error", err); ("message", msg) ]
        "request.error"
  | None -> ());
  Obs.Span.finish span
    ~counters:
      [
        ("degraded", if !degraded then 1.0 else 0.0);
        ("error", if body.Protocol.b_status = "error" then 1.0 else 0.0);
      ];
  (body, !degraded)

(* ---------------- dedup + executor ---------------- *)

let add_recent t key body =
  Hashtbl.replace t.recent key body;
  Queue.add key t.recent_order;
  while Queue.length t.recent_order > t.recent_cap do
    let victim = Queue.pop t.recent_order in
    (* the victim may have been re-added since; only drop it if this
       queue entry is its last *)
    if not (Queue.fold (fun acc k -> acc || k = victim) false t.recent_order)
    then Hashtbl.remove t.recent victim
  done

let wait_job (job : job) : Protocol.body =
  Mutex.lock job.jm;
  while job.jb_body = None do
    Condition.wait job.jc job.jm
  done;
  let b = Option.get job.jb_body in
  Mutex.unlock job.jm;
  b

let finish_job (job : job) body =
  Mutex.lock job.jm;
  job.jb_body <- Some body;
  Condition.broadcast job.jc;
  Mutex.unlock job.jm

(** The structured deadline envelope: an error of kind [deadline_exceeded]
    that still carries the engine's partial result (with its
    ["deadline_exceeded"] degradation entry) when the run got far enough
    to produce one. *)
let deadline_body ~kind ?result ~msg () =
  let b = Protocol.error_body ~kind ~err:"deadline_exceeded" ~msg in
  match result with
  | Some r -> { b with Protocol.b_result = r }
  | None -> b

(** Deadline and overload answers describe the daemon's load at one
    instant, not the request's semantics — caching them would make a
    retry (which dedup makes safe precisely so clients can retry) replay
    a stale refusal. *)
let transient_error (body : Protocol.body) =
  match body.Protocol.b_error with
  | Some (("deadline_exceeded" | "overloaded" | "unavailable"), _) -> true
  | _ -> false

(** Answer a job whose deadline passed before the engine ever saw it. *)
let expire_job job ~(where : string) =
  let kind = Protocol.kind_name job.jb_req.Protocol.rq_kind in
  let trace = trace_of_key job.jb_key in
  Log.warn ~trace "request.deadline" [ ("kind", kind); ("where", where) ];
  finish_job job
    (deadline_body ~kind ~msg:("deadline expired while " ^ where) ())

let executor_loop t =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.work t.lock
    done;
    if Queue.is_empty t.queue then (* stopping, fully drained *)
      Mutex.unlock t.lock
    else begin
      let job = Queue.pop t.queue in
      if Unix.gettimeofday () > job.jb_deadline then begin
        (* expired in the queue between watchdog ticks: answered here at
           the pop, but never run *)
        Hashtbl.remove t.inflight job.jb_key;
        t.ct.c_deadline <- t.ct.c_deadline + 1;
        Mutex.unlock t.lock;
        expire_job job ~where:"queued";
        loop ()
      end
      else begin
        t.running <- Some job;
        Mutex.unlock t.lock;
        let trace = trace_of_key job.jb_key in
        let (body, degraded) =
          try run_request t job.jb_req ~trace ~cancel:job.jb_cancel ()
          with e ->
            (* the executor must survive anything a request throws *)
            ( Protocol.error_body
                ~kind:(Protocol.kind_name job.jb_req.Protocol.rq_kind)
                ~err:"internal" ~msg:(Printexc.to_string e),
              false )
        in
        (* a fired token (deadline self-cancel or watchdog) outranks the
           run's own answer: the caller's deadline has passed, so the
           envelope is the structured deadline error — the partial
           engine result (and its degradation entry) rides along *)
        let cancelled = Cancel.cancelled job.jb_cancel in
        let body =
          if not cancelled then body
          else
            deadline_body
              ~kind:(Protocol.kind_name job.jb_req.Protocol.rq_kind)
              ~result:body.Protocol.b_result
              ~msg:(Cancel.reason job.jb_cancel)
              ()
        in
        let save_now =
          with_lock t (fun () ->
              t.running <- None;
              t.ct.c_executed <- t.ct.c_executed + 1;
              if cancelled then begin
                t.ct.c_cancelled <- t.ct.c_cancelled + 1;
                t.ct.c_deadline <- t.ct.c_deadline + 1
              end;
              Hashtbl.remove t.inflight job.jb_key;
              if not (transient_error body) then add_recent t job.jb_key body;
              t.ct.c_executed mod t.save_every = 0)
        in
      (* persist warm-store growth outside the daemon lock; Store.save is
         atomic and internally synchronized, so it may race concurrent
         engine lookups and external readers without tearing the file *)
      if save_now then Store.save t.st_store;
      (* flight recorder: a degraded run, contained kill/crash or
         internal error cuts a post-mortem dump of the span/event ring *)
      let dump_reason =
        match body.Protocol.b_error with
        | Some ("killed", _) -> Some "killed"
        | Some ("internal", _) -> Some "internal"
        | _ -> if degraded then Some "degraded" else None
      in
      (match (dump_reason, t.flight_dir) with
      | Some reason, Some dir -> (
          match Flight.dump ~dir ~reason ~trace () with
          | Some path ->
              with_lock t (fun () ->
                  t.tl.tl_flight_dumps <- t.tl.tl_flight_dumps + 1);
              Log.warn ~trace "flight.dump"
                [ ("reason", reason); ("path", path) ]
          | None -> Log.warn ~trace "flight.dump_failed" [ ("reason", reason) ])
      | _ -> ());
        finish_job job body;
        loop ()
      end
    end
  in
  loop ()

(** The [retry_after_ms] hint on an overload shed: the queue would have
    to drain [depth + 1] slots before a retry could run, and the live
    per-kind latency histogram says how long a slot takes (p50; 100 ms a
    slot until the histogram has data).  Clamped to [25 ms, 60 s] so the
    hint is never a busy-loop nor a give-up.  Caller holds the lock. *)
let retry_after_ms_locked t (kind : string) : int =
  let slot_ms =
    match List.assoc_opt kind t.tl.tl_lat with
    | Some h when h.Obs.Hist.count > 0 -> Obs.Hist.percentile h 0.5 *. 1000.0
    | _ -> 100.0
  in
  let slots = Queue.length t.queue + 1 in
  let ms = int_of_float (ceil (slot_ms *. float_of_int slots)) in
  max 25 (min 60_000 ms)

(** Resolve a request to a (dedup label, body).  Blocks until the body is
    available; connection-handler context. *)
let submit t (rq : Protocol.request) : string * Protocol.body =
  let key = Protocol.fingerprint rq in
  let action =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.recent key with
        | Some body ->
            t.ct.c_dedup_recent <- t.ct.c_dedup_recent + 1;
            `Recent body
        | None -> (
            match Hashtbl.find_opt t.inflight key with
            | Some job ->
                t.ct.c_dedup_inflight <- t.ct.c_dedup_inflight + 1;
                `Join job
            | None ->
                if t.stopping then `Unavailable
                else if Queue.length t.queue >= t.queue_cap then begin
                  (* admission control: shed rather than grow the queue
                     without bound — the answer costs nothing downstream
                     (never touches the executor) and tells the client
                     exactly when to come back *)
                  t.ct.c_shed <- t.ct.c_shed + 1;
                  `Shed
                    (retry_after_ms_locked t
                       (Protocol.kind_name rq.Protocol.rq_kind))
                end
                else begin
                  let now = Unix.gettimeofday () in
                  let deadline = now +. rq.Protocol.rq_timeout in
                  let job =
                    {
                      jb_req = rq;
                      jb_key = key;
                      jb_deadline = deadline;
                      jb_cancel = Cancel.create ~deadline ();
                      jb_watchdogged = false;
                      jm = Mutex.create ();
                      jc = Condition.create ();
                      jb_body = None;
                    }
                  in
                  Hashtbl.replace t.inflight key job;
                  Queue.add job t.queue;
                  Condition.signal t.work;
                  `Run job
                end))
  in
  match action with
  | `Recent body -> ("recent", body)
  | `Join job -> ("inflight", wait_job job)
  | `Run job -> ("miss", wait_job job)
  | `Shed ms ->
      let kind = Protocol.kind_name rq.Protocol.rq_kind in
      Log.warn "request.shed" [ ("kind", kind); ("retry_after_ms", string_of_int ms) ];
      ( "none",
        {
          (Protocol.error_body ~kind ~err:"overloaded"
             ~msg:"queue full; retry after the hinted backoff")
          with
          Protocol.b_retry_after_ms = Some ms;
        } )
  | `Unavailable ->
      ( "none",
        Protocol.error_body
          ~kind:(Protocol.kind_name rq.Protocol.rq_kind)
          ~err:"unavailable" ~msg:"daemon is shutting down" )

(* ---------------- watchdog (wedge recovery) ---------------- *)

(** The watchdog tick: expel queued jobs whose deadline already passed
    (answered without ever touching the executor) and escalate on a
    wedged running job — one that blew through deadline + grace, meaning
    the engine's cooperative check points are not being reached (e.g. a
    stuck solver).  Escalation: dump a flight record, then cancel the
    job's token so the wedge (which polls the token) unblocks; the
    executor answers it like any cancelled run and keeps serving. *)
let watchdog_tick t =
  let now = Unix.gettimeofday () in
  let (expired, wedged) =
    with_lock t (fun () ->
        let expired = ref [] in
        let keep = Queue.create () in
        Queue.iter
          (fun job ->
            if now > job.jb_deadline then begin
              Hashtbl.remove t.inflight job.jb_key;
              t.ct.c_deadline <- t.ct.c_deadline + 1;
              expired := job :: !expired
            end
            else Queue.add job keep)
          t.queue;
        Queue.clear t.queue;
        Queue.transfer keep t.queue;
        let wedged =
          match t.running with
          | Some job
            when now > job.jb_deadline +. t.grace && not job.jb_watchdogged ->
              job.jb_watchdogged <- true;
              t.ct.c_watchdog <- t.ct.c_watchdog + 1;
              Some job
          | _ -> None
        in
        (List.rev !expired, wedged))
  in
  List.iter (fun job -> expire_job job ~where:"queued") expired;
  match wedged with
  | None -> ()
  | Some job ->
      let trace = trace_of_key job.jb_key in
      (* dump first: the record must capture the wedged state, not the
         recovery *)
      (match t.flight_dir with
      | Some dir -> (
          match Flight.dump ~dir ~reason:"watchdog" ~trace () with
          | Some path ->
              with_lock t (fun () ->
                  t.tl.tl_flight_dumps <- t.tl.tl_flight_dumps + 1);
              Log.warn ~trace "flight.dump"
                [ ("reason", "watchdog"); ("path", path) ]
          | None ->
              Log.warn ~trace "flight.dump_failed" [ ("reason", "watchdog") ])
      | None -> ());
      Log.warn ~trace "watchdog.cancel"
        [
          ("kind", Protocol.kind_name job.jb_req.Protocol.rq_kind);
          ("grace_s", Printf.sprintf "%.3f" t.grace);
        ];
      Cancel.cancel job.jb_cancel
        ~reason:"watchdog: job ran past deadline + grace"

let watchdog_loop t =
  let rec loop () =
    let done_ =
      with_lock t (fun () ->
          (* keep ticking through shutdown until the executor is idle —
             a job that wedges during drain still needs the escalation *)
          t.stopping && Queue.is_empty t.queue && t.running = None)
    in
    if done_ then ()
    else begin
      watchdog_tick t;
      Thread.delay 0.05;
      loop ()
    end
  in
  loop ()

(* ---------------- stats + shutdown (inline, no queue) ---------------- *)

let stats_body t : Protocol.body =
  let result =
    with_lock t (fun () ->
        Printf.sprintf
          "{\"requests\": %d, \"executed\": %d, \"dedup_inflight\": %d, \
           \"dedup_recent\": %d, \"dedup_hits\": %d, \"malformed\": %d, \
           \"errors\": %d, \"requests_shed\": %d, \"cancelled\": %d, \
           \"deadline_exceeded\": %d, \"watchdog_fired\": %d, \
           \"idle_reaped\": %d, \"queue_depth\": %d, \"inflight\": %d, \
           \"recent\": %d, \"store_entries\": %d, \"store_loaded\": %d}"
          t.ct.c_requests t.ct.c_executed t.ct.c_dedup_inflight
          t.ct.c_dedup_recent
          (t.ct.c_dedup_inflight + t.ct.c_dedup_recent)
          t.ct.c_malformed t.ct.c_errors t.ct.c_shed t.ct.c_cancelled
          t.ct.c_deadline t.ct.c_watchdog t.ct.c_reaped
          (Queue.length t.queue)
          (Hashtbl.length t.inflight)
          (Hashtbl.length t.recent)
          (Store.length t.st_store)
          (Store.loaded t.st_store))
  in
  Protocol.ok_body ~kind:"stats" ~result ()

(* ---------------- metrics (supersedes stats) ---------------- *)

let hist_json (h : Obs.Hist.t) : string =
  Printf.sprintf
    "{\"count\": %d, \"mean_ms\": %.3f, \"p50_ms\": %.3f, \"p95_ms\": \
     %.3f, \"p99_ms\": %.3f, \"max_ms\": %.3f}"
    h.Obs.Hist.count
    (Obs.Hist.mean h *. 1000.0)
    (Obs.Hist.percentile h 0.5 *. 1000.0)
    (Obs.Hist.percentile h 0.95 *. 1000.0)
    (Obs.Hist.percentile h 0.99 *. 1000.0)
    (h.Obs.Hist.max *. 1000.0)

(** Absolute registry counters (the [obs] envelope field carries
    per-request deltas; [metrics] reports daemon-lifetime totals). *)
let registry_json () : string =
  let cells =
    List.filter_map
      (fun (c : Obs.Registry.cell) ->
        if c.Obs.Registry.kind <> Obs.Registry.Counter then None
        else
          Some
            (Printf.sprintf "{\"name\": \"%s\"%s, \"count\": %d}"
               (Json.escape c.Obs.Registry.name)
               (match c.Obs.Registry.labels with
               | [] -> ""
               | ls ->
                   Printf.sprintf ", \"labels\": {%s}"
                     (String.concat ", "
                        (List.map
                           (fun (k, v) ->
                             Printf.sprintf "\"%s\": \"%s\"" (Json.escape k)
                               (Json.escape v))
                           ls)))
               c.Obs.Registry.count))
      (Obs.Registry.dump ())
  in
  "[" ^ String.concat ", " cells ^ "]"

(** The full telemetry registry as one JSON document, fixed key order. *)
let metrics_doc t : string =
  with_lock t (fun () ->
      let tl = t.tl in
      let lat =
        String.concat ", "
          (List.map
             (fun (k, h) -> Printf.sprintf "\"%s\": %s" k (hist_json h))
             tl.tl_lat)
      in
      Printf.sprintf
        "{\"uptime_s\": %.3f, \"queue_depth\": %d, \"requests\": %d, \
         \"executed\": %d, \"dedup_inflight\": %d, \"dedup_recent\": %d, \
         \"dedup_hits\": %d, \"malformed\": %d, \"errors\": %d, \
         \"requests_shed\": %d, \"cancelled\": %d, \"deadline_exceeded\": \
         %d, \"watchdog_fired\": %d, \"idle_reaped\": %d, \
         \"degraded\": %d, \"flight_dumps\": %d, \"flight_records\": %d, \
         \"flight_dropped\": %d, \"store_entries\": %d, \"store_loaded\": \
         %d, \"store_hits\": %d, \"engine_queries\": %d, \
         \"engine_cache_hits\": %d, \"solver_time_s\": %.6f, \
         \"summary_instantiated\": %d, \"summary_opaque\": %d, \
         \"summary_computed\": %d, \"summary_cached\": %d, \"latency_ms\": \
         {%s}, \"registry\": %s}"
        (Unix.gettimeofday () -. tl.tl_started)
        (Queue.length t.queue) t.ct.c_requests t.ct.c_executed
        t.ct.c_dedup_inflight t.ct.c_dedup_recent
        (t.ct.c_dedup_inflight + t.ct.c_dedup_recent)
        t.ct.c_malformed t.ct.c_errors t.ct.c_shed t.ct.c_cancelled
        t.ct.c_deadline t.ct.c_watchdog t.ct.c_reaped
        tl.tl_degraded tl.tl_flight_dumps
        (List.length (Obs.Flight.records ()))
        (Obs.Flight.dropped ())
        (Store.length t.st_store) (Store.loaded t.st_store) tl.tl_store_hits
        tl.tl_engine_queries tl.tl_engine_cache_hits tl.tl_solver_time
        tl.tl_sum_instantiated tl.tl_sum_opaque tl.tl_sum_computed
        tl.tl_sum_cached lat (registry_json ()))

(** The same registry in Prometheus text exposition format. *)
let prometheus t : string =
  let b = Buffer.create 2048 in
  let metric ty name v =
    Buffer.add_string b
      (Printf.sprintf "# TYPE %s %s\n%s %s\n" name ty name v)
  in
  let gauge name v = metric "gauge" name v in
  let counter name v = metric "counter" name v in
  with_lock t (fun () ->
      let tl = t.tl in
      gauge "overify_uptime_seconds"
        (Printf.sprintf "%.3f" (Unix.gettimeofday () -. tl.tl_started));
      gauge "overify_queue_depth" (string_of_int (Queue.length t.queue));
      counter "overify_requests_total" (string_of_int t.ct.c_requests);
      counter "overify_executed_total" (string_of_int t.ct.c_executed);
      counter "overify_dedup_hits_total"
        (string_of_int (t.ct.c_dedup_inflight + t.ct.c_dedup_recent));
      counter "overify_malformed_total" (string_of_int t.ct.c_malformed);
      counter "overify_errors_total" (string_of_int t.ct.c_errors);
      counter "overify_requests_shed_total" (string_of_int t.ct.c_shed);
      counter "overify_cancelled_total" (string_of_int t.ct.c_cancelled);
      counter "overify_deadline_exceeded_total"
        (string_of_int t.ct.c_deadline);
      counter "overify_watchdog_fired_total" (string_of_int t.ct.c_watchdog);
      counter "overify_idle_reaped_total" (string_of_int t.ct.c_reaped);
      counter "overify_degraded_total" (string_of_int tl.tl_degraded);
      counter "overify_flight_dumps_total" (string_of_int tl.tl_flight_dumps);
      gauge "overify_store_entries"
        (string_of_int (Store.length t.st_store));
      counter "overify_store_hits_total" (string_of_int tl.tl_store_hits);
      counter "overify_engine_queries_total"
        (string_of_int tl.tl_engine_queries);
      counter "overify_engine_cache_hits_total"
        (string_of_int tl.tl_engine_cache_hits);
      counter "overify_solver_time_seconds_total"
        (Printf.sprintf "%.6f" tl.tl_solver_time);
      Buffer.add_string b
        "# TYPE overify_request_latency_seconds histogram\n";
      List.iter
        (fun (k, (h : Obs.Hist.t)) ->
          let cum = ref 0 in
          for i = 0 to Obs.Hist.nbuckets - 1 do
            cum := !cum + h.Obs.Hist.buckets.(i);
            Buffer.add_string b
              (Printf.sprintf
                 "overify_request_latency_seconds_bucket{kind=\"%s\",le=\"%g\"} \
                  %d\n"
                 k (Obs.Hist.bucket_bound i) !cum)
          done;
          Buffer.add_string b
            (Printf.sprintf
               "overify_request_latency_seconds_bucket{kind=\"%s\",le=\"+Inf\"} \
                %d\n"
               k h.Obs.Hist.count);
          Buffer.add_string b
            (Printf.sprintf
               "overify_request_latency_seconds_sum{kind=\"%s\"} %.6f\n" k
               h.Obs.Hist.sum);
          Buffer.add_string b
            (Printf.sprintf
               "overify_request_latency_seconds_count{kind=\"%s\"} %d\n" k
               h.Obs.Hist.count))
        tl.tl_lat);
  Buffer.contents b

let metrics_body t ~(format : string) : Protocol.body =
  let result =
    if format = "prometheus" then "\"" ^ Json.escape (prometheus t) ^ "\""
    else metrics_doc t
  in
  Protocol.ok_body ~kind:"metrics" ~result ()

let initiate_stop t =
  let first =
    with_lock t (fun () ->
        if t.stopping then false
        else begin
          t.stopping <- true;
          Condition.broadcast t.work;
          true
        end)
  in
  if first then begin
    (* unblock the accept loop: close() alone does not wake a thread
       blocked in accept() on Linux — shutdown() does *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
  end

(* ---------------- connection handling ---------------- *)

let bump_malformed t =
  with_lock t (fun () -> t.ct.c_malformed <- t.ct.c_malformed + 1)

let bump_request t =
  with_lock t (fun () -> t.ct.c_requests <- t.ct.c_requests + 1)

let note_status t (body : Protocol.body) =
  if body.Protocol.b_status = "error" then
    with_lock t (fun () -> t.ct.c_errors <- t.ct.c_errors + 1)

let handle_conn t fd =
  let respond body_json = ignore (Protocol.write_frame fd body_json) in
  let protocol_error err msg =
    bump_malformed t;
    Log.warn "request.malformed" [ ("error", err); ("message", msg) ];
    let body = Protocol.error_body ~kind:"protocol" ~err ~msg in
    note_status t body;
    respond (Protocol.response ~id:0 ~dedup:"none" ~elapsed_ms:0.0 body)
  in
  let rec loop () =
    match
      Protocol.read_frame ?idle_timeout:t.idle_timeout
        ?frame_timeout:t.frame_timeout fd
    with
    | Error Protocol.Closed -> ()
    | Error Protocol.Idle ->
        (* the reaper: a quiet keep-alive connection owed no answer —
           close it silently to free the handler thread *)
        with_lock t (fun () -> t.ct.c_reaped <- t.ct.c_reaped + 1);
        Log.info "conn.idle_reaped" []
    | Error ((Protocol.Truncated | Protocol.Corrupt | Protocol.Bad_magic
             | Protocol.Bad_version | Protocol.Oversized _
             | Protocol.Timed_out) as e) ->
        (* the stream is no longer frame-synchronized (a slow peer that
           stalls mid-frame is the slowloris case, answered
           [bad_frame:timeout]): answer (if the peer can still read) and
           drop the connection, daemon intact *)
        protocol_error "bad_frame" (Protocol.frame_error_name e)
    | Ok payload -> (
        match Json.parse payload with
        | Error msg ->
            protocol_error "bad_json" msg;
            loop () (* frame boundaries intact: keep serving *)
        | Ok j -> (
            match Protocol.request_of_json j with
            | Error msg ->
                protocol_error "bad_request" msg;
                loop ()
            | Ok rq -> (
                bump_request t;
                let kind = Protocol.kind_name rq.Protocol.rq_kind in
                let t0 = Unix.gettimeofday () in
                let answer ?(trace = "") dedup body =
                  note_status t body;
                  let elapsed_ms =
                    if rq.Protocol.rq_deterministic then 0.0
                    else (Unix.gettimeofday () -. t0) *. 1000.0
                  in
                  Log.info ~trace "request.done"
                    [
                      ("kind", kind);
                      ("dedup", dedup);
                      ("status", body.Protocol.b_status);
                    ];
                  respond
                    (Protocol.response ~id:rq.Protocol.rq_id ~dedup ~trace
                       ~elapsed_ms body)
                in
                match rq.Protocol.rq_kind with
                | Protocol.Stats ->
                    answer "none" (stats_body t);
                    loop ()
                | Protocol.Metrics ->
                    answer "none"
                      (metrics_body t ~format:rq.Protocol.rq_format);
                    loop ()
                | Protocol.Shutdown ->
                    answer "none"
                      (Protocol.ok_body ~kind:"shutdown"
                         ~result:"{\"stopping\": true}" ());
                    initiate_stop t;
                    loop ()
                | _ ->
                    (* request admission: the span every child (queue
                       wait, compile, engine, solver) hangs off *)
                    let trace = trace_of_key (Protocol.fingerprint rq) in
                    Log.debug ~trace "request.admit" [ ("kind", kind) ];
                    let aspan = Obs.Span.start ~trace ("serve." ^ kind) in
                    let (dedup, body) = submit t rq in
                    Obs.Span.finish aspan
                      ~counters:
                        [
                          ( "dedup_hit",
                            if dedup = "miss" || dedup = "none" then 0.0
                            else 1.0 );
                        ];
                    (* sheds/unavailable ([dedup = "none"]) never ran:
                       folding their ~0-cost answers into the latency
                       histogram would poison the retry_after_ms hint *)
                    if dedup <> "none" then
                      with_lock t (fun () ->
                          match List.assoc_opt kind t.tl.tl_lat with
                          | Some h ->
                              Obs.Hist.observe h (Unix.gettimeofday () -. t0)
                          | None -> ());
                    answer ~trace dedup body;
                    loop ())))
  in
  (try loop () with _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  with_lock t (fun () ->
      t.conns <- List.filter (fun c -> c != fd) t.conns)

let accept_loop t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | (fd, _) ->
        let keep =
          with_lock t (fun () ->
              if t.stopping then false
              else begin
                t.conns <- fd :: t.conns;
                true
              end)
        in
        if keep then begin
          let th = Thread.create (handle_conn t) fd in
          with_lock t (fun () -> t.handlers <- th :: t.handlers)
        end
        else (try Unix.close fd with Unix.Unix_error _ -> ());
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> ()  (* listener closed: shutting down *)
    | exception _ -> ()
  in
  go ()

(* ---------------- lifecycle ---------------- *)

let default_socket () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "overify-serve-%d.sock" (Unix.getpid ()))

let rm_rf dir =
  (if Sys.file_exists dir && Sys.is_directory dir then
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir));
  try Sys.rmdir dir with Sys_error _ -> ()

let start ?socket ?cache_dir ?(recent_cap = 128) ?(save_every = 32)
    ?queue_cap ?(grace = 2.0) ?(idle_timeout = 600.0) ?(frame_timeout = 30.0)
    ?obs ?flight_dir ?log_level () : t =
  (* a dead peer must fail the write, not the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* flag beats environment: the daemon decides its own observability,
     clients need no OVERIFY_OBS/OVERIFY_LOG in their environment *)
  (match log_level with Some l -> Log.set_level l | None -> ());
  (match obs with Some b -> Obs.set_enabled b | None -> ());
  let sock_path =
    match socket with Some s -> s | None -> default_socket ()
  in
  let (dir, own_cache_dir) =
    match cache_dir with
    | Some d -> (d, None)
    | None ->
        let f = Filename.temp_file "overify_serve_cache" "" in
        Sys.remove f;
        let d = f ^ ".d" in
        (d, Some d)
  in
  let st_store = Store.load ~dir () in
  (if Sys.file_exists sock_path then
     try Unix.unlink sock_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind listen_fd (Unix.ADDR_UNIX sock_path)
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listen_fd 64;
  let t =
    {
      sock_path;
      listen_fd;
      st_store;
      own_cache_dir;
      flight_dir;
      recent_cap = max 1 recent_cap;
      save_every = max 1 save_every;
      queue_cap = (match queue_cap with Some c -> max 0 c | None -> max_int);
      grace = max 0.0 grace;
      idle_timeout = (if idle_timeout <= 0.0 then None else Some idle_timeout);
      frame_timeout =
        (if frame_timeout <= 0.0 then None else Some frame_timeout);
      tl =
        {
          tl_started = Unix.gettimeofday ();
          tl_lat =
            [
              ("verify", Obs.Hist.create ());
              ("compile", Obs.Hist.create ());
              ("tv", Obs.Hist.create ());
            ];
          tl_degraded = 0;
          tl_flight_dumps = 0;
          tl_store_hits = 0;
          tl_engine_queries = 0;
          tl_engine_cache_hits = 0;
          tl_solver_time = 0.0;
          tl_sum_instantiated = 0;
          tl_sum_opaque = 0;
          tl_sum_computed = 0;
          tl_sum_cached = 0;
        };
      lock = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      inflight = Hashtbl.create 16;
      recent = Hashtbl.create 64;
      recent_order = Queue.create ();
      ct =
        {
          c_requests = 0;
          c_executed = 0;
          c_dedup_inflight = 0;
          c_dedup_recent = 0;
          c_malformed = 0;
          c_errors = 0;
          c_shed = 0;
          c_cancelled = 0;
          c_deadline = 0;
          c_watchdog = 0;
          c_reaped = 0;
        };
      running = None;
      stopping = false;
      finished = false;
      conns = [];
      handlers = [];
      accept_thread = None;
      exec_thread = None;
      watchdog_thread = None;
    }
  in
  t.exec_thread <- Some (Thread.create executor_loop t);
  t.watchdog_thread <- Some (Thread.create watchdog_loop t);
  t.accept_thread <- Some (Thread.create accept_loop t);
  Log.info "daemon.start"
    ([ ("socket", sock_path); ("cache_dir", dir) ]
    @ match flight_dir with Some d -> [ ("flight_dir", d) ] | None -> []);
  t

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (* the accept loop only exits when the listener is gone; make sure the
     executor sees the stop flag even on an unexpected listener error *)
  with_lock t (fun () ->
      if not t.stopping then begin
        t.stopping <- true;
        Condition.broadcast t.work
      end);
  (match t.exec_thread with Some th -> Thread.join th | None -> ());
  (match t.watchdog_thread with Some th -> Thread.join th | None -> ());
  (* every job has a body by now, but a handler may still be {e writing}
     its response — shut down only the read side, so blocked reads wake
     with EOF while in-flight response writes complete *)
  let conns = with_lock t (fun () -> t.conns) in
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    conns;
  let handlers = with_lock t (fun () -> t.handlers) in
  List.iter (fun th -> try Thread.join th with _ -> ()) handlers;
  let first =
    with_lock t (fun () ->
        if t.finished then false
        else begin
          t.finished <- true;
          true
        end)
  in
  if first then begin
    Store.save t.st_store;
    (* the daemon is going away: cut a final flight record so a
       post-mortem sees the last requests even on a clean shutdown *)
    (match t.flight_dir with
    | Some dir -> (
        match Flight.dump ~dir ~reason:"shutdown" ~trace:"" () with
        | Some path -> Log.info "flight.dump" [ ("reason", "shutdown"); ("path", path) ]
        | None -> Log.warn "flight.dump_failed" [ ("reason", "shutdown") ])
    | None -> ());
    Log.info "daemon.stop"
      [ ("executed", string_of_int t.ct.c_executed) ];
    (try Unix.unlink t.sock_path with Unix.Unix_error _ -> ());
    match t.own_cache_dir with Some d -> rm_rf d | None -> ()
  end

let stop t =
  initiate_stop t;
  wait t
