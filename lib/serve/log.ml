(** Structured daemon logging.  See log.mli. *)

module Obs = Overify_obs.Obs

type level = Debug | Info | Warn

let rank = function Debug -> 0 | Info -> 1 | Warn -> 2
let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn"

let level_of_name s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | _ -> None

let env_level () =
  match Option.bind (Sys.getenv_opt "OVERIFY_LOG") level_of_name with
  | Some l -> l
  | None -> Warn

let current = ref (env_level ())
let set_level l = current := l
let level () = !current
let enabled l = rank l >= rank !current

(* one line per write, whole lines only: handler threads log concurrently *)
let lock = Mutex.create ()

let line ~level:l ~trace event fields =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{\"ts\": %.6f, \"level\": \"%s\", \"event\": \"%s\""
       (Unix.gettimeofday ()) (level_name l) (Json.escape event));
  if trace <> "" then
    Buffer.add_string b
      (Printf.sprintf ", \"trace\": \"%s\"" (Json.escape trace));
  List.iter
    (fun (k, v) ->
      Buffer.add_string b
        (Printf.sprintf ", \"%s\": \"%s\"" (Json.escape k) (Json.escape v)))
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

let logf ?(trace = "") l event fields =
  (* warnings reach the flight ring even when stderr is quieter *)
  if rank l >= rank Warn then
    Obs.Flight.record
      {
        Obs.Flight.fr_ts = Unix.gettimeofday ();
        fr_dur = 0.0;
        fr_trace = trace;
        fr_id = 0;
        fr_parent = -1;
        fr_kind = "log";
        fr_label = event;
        fr_counters = [];
        fr_args = fields;
      };
  if enabled l then begin
    let s = line ~level:l ~trace event fields in
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        output_string stderr s;
        output_char stderr '\n';
        flush stderr)
  end

let debug ?trace event fields = logf ?trace Debug event fields
let info ?trace event fields = logf ?trace Info event fields
let warn ?trace event fields = logf ?trace Warn event fields
